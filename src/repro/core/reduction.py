"""Simplification of version stamps upon joins (Section 6 of the paper).

After a ``join`` the frontier has fewer elements, so shorter identities
suffice to keep them distinct.  The paper captures this with a rewriting rule
on stamps ``(u, i)``:

    ``(u, {i, s0, s1})  →  (u', {i, s})``

where ``s0`` and ``s1`` are the two one-bit extensions of some string ``s``
both present in the id, and

    ``u' = u \\ {s0, s1} ∪ {s}``  if ``s0 ∈ u`` or ``s1 ∈ u``, else ``u' = u``.

The rule is applied repeatedly until no sibling pair remains; because the
name order is well founded and the rule is confluent, every stamp has a
unique *normal form*.  The paper proves (and our tests re-check) that the
rewriting preserves well-formedness, the invariants I1-I3 and the frontier
relation ``R``.

Algorithm
---------
:func:`normalize` no longer applies the rule step-at-a-time (the seed did a
full sibling rescan after every single rewrite, O(k²) per collapse).  It now
performs one **single-pass bottom-up sibling collapse** over the id's
canonically sorted packed codes: sibling pairs are always adjacent in that
order (two packed codes are siblings iff they xor to 1), a collapsed parent
occupies exactly the sorted position of the pair it replaces, and a fresh
parent can only collapse further with the element immediately to its left --
so one scan with a look-back step finds every collapse, cascading upward as
deep chains fold.  Each collapse is a couple of integer operations, making
normalization O(k + steps) ≈ O(k·depth) worst-case total instead of O(k²)
per rewrite, while the reported ``steps`` count is exactly the number of
single-rule applications the step-at-a-time strategy would have performed
(the rule is confluent, so the count and the normal form are
strategy-independent).

The functions in this module operate on pairs of :class:`~repro.core.names.Name`
so they can be used both by :class:`~repro.core.stamp.VersionStamp` and by
lower-level tooling (e.g. the exhaustive model checker explores both the
reduced and the non-reduced variants of the mechanism).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .bitstring import BitString
from .names import Name, _bisect_left_lex

__all__ = [
    "find_sibling_pair",
    "rewrite_once",
    "normalize",
    "reduce_stamp_pair",
    "ReductionStats",
    "is_normal_form",
]


def find_sibling_pair(identity: Name) -> Optional[Tuple[BitString, BitString]]:
    """Find a pair ``(s0, s1)`` of sibling strings in ``identity``.

    Returns ``None`` when the id contains no two strings differing only in
    their last bit, i.e. when the stamp is already in normal form with
    respect to the Section 6 rewriting rule.  When several pairs exist the
    lexicographically first is returned; confluence of the rule makes the
    choice irrelevant for the final normal form.

    In an antichain, siblings are always adjacent in the canonical sorted
    order (anything between ``s0`` and ``s1`` lexicographically would extend
    ``s0``), so a single adjacent-pair scan suffices: O(k) instead of the
    seed's O(k) hash probes over freshly-built sets.
    """
    codes = identity._codes
    for index in range(len(codes) - 1):
        if (codes[index] ^ codes[index + 1]) == 1:
            return (
                BitString._from_code(codes[index]),
                BitString._from_code(codes[index + 1]),
            )
    return None


def rewrite_once(update: Name, identity: Name) -> Optional[Tuple[Name, Name]]:
    """Apply the rewriting rule once, if possible.

    Returns the rewritten ``(update, identity)`` pair, or ``None`` when no
    sibling pair exists in the id.  Kept as the executable statement of the
    paper's single-step rule (the tests check confluence against it);
    :func:`normalize` uses the batched bottom-up collapse instead.
    """
    pair = find_sibling_pair(identity)
    if pair is None:
        return None
    zero, one = pair
    parent = zero.parent()

    new_id_strings = (identity.strings - {zero, one}) | {parent}
    new_identity = Name(new_id_strings, _trusted=True)

    if zero in update.strings or one in update.strings:
        new_update_strings = (update.strings - {zero, one}) | {parent}
        new_update = Name(new_update_strings, _trusted=True)
    else:
        new_update = update
    return new_update, new_identity


def _normalize_identity(identity: Name) -> Tuple[Name, int]:
    """Collapse sibling pairs of a lone id; same scan as :func:`normalize`."""
    out: List[int] = []
    steps = 0
    for code in identity._codes:
        while out and (out[-1] ^ code) == 1:
            out.pop()
            steps += 1
            code >>= 1
        out.append(code)
    if not steps:
        return identity, 0
    return Name._from_codes(tuple(out)), steps


def normalize(update: Name, identity: Name) -> Tuple[Name, Name, int]:
    """Rewrite ``(update, identity)`` to its unique normal form.

    Returns ``(update', identity', steps)`` where ``steps`` is the number of
    rewriting-rule applications performed.  The rule strictly decreases the
    total length of the id, so termination is guaranteed.

    Implemented as a single left-to-right pass over the sorted packed codes
    with a look-back collapse step (see the module docstring); each collapse
    counts as one step.
    """
    if update is identity:
        # update ≡ id (the state right after an update operation): every id
        # collapse applies verbatim to the update, so normalize the id once
        # and share the resulting Name between both components.
        new_identity, steps = _normalize_identity(identity)
        return new_identity, new_identity, steps

    # One left-to-right scan over the sorted packed codes.  In the canonical
    # order a sibling pair (s0, s1) is always adjacent (anything between
    # would extend s0 and break the antichain), their parent occupies the
    # same sorted position as the pair it replaces, and a fresh parent can
    # only collapse further with the element now to its left -- so a single
    # pass with a collapse-and-look-back step visits each string once and
    # each collapse is a couple of integer operations: O(k + steps) total.
    out: List[int] = []
    update_codes = None
    update_list = None
    update_changed = False
    steps = 0
    for code in identity._codes:
        while out and (out[-1] ^ code) == 1:
            sibling = out.pop()
            steps += 1
            if update_codes is None:
                update_list = list(update._codes)
                update_codes = set(update_list)
            in_zero = sibling in update_codes
            in_one = code in update_codes
            if in_zero or in_one:
                # The rewrite keeps the update sorted: under invariant I1 the
                # parent occupies exactly the slot of the pair it replaces
                # (anything between would extend the collapsed sibling and
                # break the antichain), so splice in place -- no re-sort.
                parent = code >> 1
                if in_zero:
                    index = _bisect_left_lex(update_list, sibling)
                    if in_one:
                        update_list[index:index + 2] = [parent]
                    else:
                        update_list[index] = parent
                else:
                    update_list[_bisect_left_lex(update_list, code)] = parent
                update_codes.discard(sibling)
                update_codes.discard(code)
                update_codes.add(parent)
                update_changed = True
            code >>= 1
        out.append(code)

    if not steps:
        return update, identity, 0

    new_identity = Name._from_codes(tuple(out))
    if update_changed:
        new_update = Name._from_codes(tuple(update_list))
    else:
        new_update = update
    return new_update, new_identity, steps


def is_normal_form(identity: Name) -> bool:
    """Return ``True`` iff the id contains no collapsible sibling pair."""
    return find_sibling_pair(identity) is None


@dataclass(frozen=True)
class ReductionStats:
    """Book-keeping about one normalization, used by the benchmarks.

    Attributes
    ----------
    steps:
        Number of rewriting-rule applications.
    id_bits_before / id_bits_after:
        Encoded size (bits) of the id component before and after.
    update_bits_before / update_bits_after:
        Encoded size (bits) of the update component before and after.
    """

    steps: int
    id_bits_before: int
    id_bits_after: int
    update_bits_before: int
    update_bits_after: int

    @property
    def bits_saved(self) -> int:
        """Total encoded bits removed by the normalization."""
        before = self.id_bits_before + self.update_bits_before
        after = self.id_bits_after + self.update_bits_after
        return before - after

    @property
    def reduced(self) -> bool:
        """True when at least one rewriting step was applied."""
        return self.steps > 0


def reduce_stamp_pair(update: Name, identity: Name) -> Tuple[Name, Name, ReductionStats]:
    """Normalize a stamp pair and report :class:`ReductionStats` about it.

    Callers that do not need the statistics (the plain ``join`` path) should
    call :func:`normalize` directly and skip the size bookkeeping.
    """
    before_id_bits = identity.size_in_bits()
    before_update_bits = update.size_in_bits()
    new_update, new_identity, steps = normalize(update, identity)
    stats = ReductionStats(
        steps=steps,
        id_bits_before=before_id_bits,
        id_bits_after=new_identity.size_in_bits(),
        update_bits_before=before_update_bits,
        update_bits_after=new_update.size_in_bits(),
    )
    return new_update, new_identity, stats
