"""Simplification of version stamps upon joins (Section 6 of the paper).

After a ``join`` the frontier has fewer elements, so shorter identities
suffice to keep them distinct.  The paper captures this with a rewriting rule
on stamps ``(u, i)``:

    ``(u, {i, s0, s1})  →  (u', {i, s})``

where ``s0`` and ``s1`` are the two one-bit extensions of some string ``s``
both present in the id, and

    ``u' = u \\ {s0, s1} ∪ {s}``  if ``s0 ∈ u`` or ``s1 ∈ u``, else ``u' = u``.

The rule is applied repeatedly until no sibling pair remains; because the
name order is well founded and the rule is confluent, every stamp has a
unique *normal form*.  The paper proves (and our tests re-check) that the
rewriting preserves well-formedness, the invariants I1-I3 and the frontier
relation ``R``.

The functions in this module operate on pairs of :class:`~repro.core.names.Name`
so they can be used both by :class:`~repro.core.stamp.VersionStamp` and by
lower-level tooling (e.g. the exhaustive model checker explores both the
reduced and the non-reduced variants of the mechanism).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from .bitstring import BitString
from .names import Name

__all__ = [
    "find_sibling_pair",
    "rewrite_once",
    "normalize",
    "reduce_stamp_pair",
    "ReductionStats",
    "is_normal_form",
]


def find_sibling_pair(identity: Name) -> Optional[Tuple[BitString, BitString]]:
    """Find a pair ``(s0, s1)`` of sibling strings in ``identity``.

    Returns ``None`` when the id contains no two strings differing only in
    their last bit, i.e. when the stamp is already in normal form with
    respect to the Section 6 rewriting rule.  When several pairs exist an
    arbitrary (but deterministic) one is returned; confluence of the rule
    makes the choice irrelevant for the final normal form.
    """
    strings = identity.sorted_strings()
    seen: Set[BitString] = set(strings)
    for string in strings:
        if len(string) == 0:
            continue
        sibling = string.sibling()
        if sibling in seen:
            zero, one = sorted((string, sibling))
            return zero, one
    return None


def rewrite_once(update: Name, identity: Name) -> Optional[Tuple[Name, Name]]:
    """Apply the rewriting rule once, if possible.

    Returns the rewritten ``(update, identity)`` pair, or ``None`` when no
    sibling pair exists in the id.
    """
    pair = find_sibling_pair(identity)
    if pair is None:
        return None
    zero, one = pair
    parent = zero.parent()

    new_id_strings = (identity.strings - {zero, one}) | {parent}
    new_identity = Name(new_id_strings, _trusted=True)

    if zero in update.strings or one in update.strings:
        new_update_strings = (update.strings - {zero, one}) | {parent}
        new_update = Name(new_update_strings, _trusted=True)
    else:
        new_update = update
    return new_update, new_identity


def normalize(update: Name, identity: Name) -> Tuple[Name, Name, int]:
    """Rewrite ``(update, identity)`` to its unique normal form.

    Returns ``(update', identity', steps)`` where ``steps`` is the number of
    rewriting-rule applications performed.  The rule strictly decreases the
    total length of the id, so termination is guaranteed.
    """
    steps = 0
    while True:
        rewritten = rewrite_once(update, identity)
        if rewritten is None:
            return update, identity, steps
        update, identity = rewritten
        steps += 1


def is_normal_form(identity: Name) -> bool:
    """Return ``True`` iff the id contains no collapsible sibling pair."""
    return find_sibling_pair(identity) is None


@dataclass(frozen=True)
class ReductionStats:
    """Book-keeping about one normalization, used by the benchmarks.

    Attributes
    ----------
    steps:
        Number of rewriting-rule applications.
    id_bits_before / id_bits_after:
        Encoded size (bits) of the id component before and after.
    update_bits_before / update_bits_after:
        Encoded size (bits) of the update component before and after.
    """

    steps: int
    id_bits_before: int
    id_bits_after: int
    update_bits_before: int
    update_bits_after: int

    @property
    def bits_saved(self) -> int:
        """Total encoded bits removed by the normalization."""
        before = self.id_bits_before + self.update_bits_before
        after = self.id_bits_after + self.update_bits_after
        return before - after

    @property
    def reduced(self) -> bool:
        """True when at least one rewriting step was applied."""
        return self.steps > 0


def reduce_stamp_pair(update: Name, identity: Name) -> Tuple[Name, Name, ReductionStats]:
    """Normalize a stamp pair and report :class:`ReductionStats` about it."""
    before_id_bits = identity.size_in_bits()
    before_update_bits = update.size_in_bits()
    new_update, new_identity, steps = normalize(update, identity)
    stats = ReductionStats(
        steps=steps,
        id_bits_before=before_id_bits,
        id_bits_after=new_identity.size_in_bits(),
        update_bits_before=before_update_bits,
        update_bits_after=new_update.size_in_bits(),
    )
    return new_update, new_identity, stats
