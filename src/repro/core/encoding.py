"""Serialization of names and version stamps.

The paper argues (Section 3) that an "efficient use of space is also highly
desirable in order to support a practical use" of version stamps.  This
module provides three interchangeable codecs plus the size accounting used by
the space benchmarks:

* **text** -- the paper's human-readable ``[update | id]`` notation with
  ``+``-separated binary strings.
* **JSON** -- a portable dictionary representation for interoperability.
* **binary** -- a compact bit-level codec.  A name is an antichain, i.e. the
  set of leaves of a binary trie; the codec walks that trie emitting one
  "member leaf?" bit per node and one presence bit per child, which is
  self-delimiting and close to the information-theoretic minimum for the
  structures the mechanism produces.  Stamps concatenate the encodings of the
  two components; the byte form pads the final byte with zeros.

All functions raise :class:`~repro.core.errors.EncodingError` on malformed
input.

Fast path
---------
The byte form (:func:`stamp_to_bytes` / :func:`stamp_from_bytes`) never
materializes a Python list of 0/1 ints.  Encoding walks the lex-sorted
packed codes of each name directly (lexicographic order *is* trie
pre-order, so the child partition of any trie node is one contiguous run)
and accumulates the bit stream in a single arbitrary-precision integer
that one bulk ``int.to_bytes`` turns into the payload; decoding is the
inverse -- one bulk ``int.from_bytes``, then an iterative trie walk
reading bits straight off the integer and appending packed codes in
pre-order, which lands them already in the canonical sorted order
:meth:`Name._from_codes` wants.  Trie leaves are prefix-free by
construction, so the decoded codes are an antichain without a validation
pass.  The list-based functions (:func:`name_to_bitstream` and friends)
are retained as the readable reference implementation and are pinned to
the fast path by differential tests.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from .bitstring import BitString
from .errors import EncodingError, EnvelopeTruncatedError
from .names import Name
from .stamp import VersionStamp

__all__ = [
    "name_to_json",
    "name_from_json",
    "stamp_to_json",
    "stamp_from_json",
    "stamp_to_text",
    "stamp_from_text",
    "name_to_bitstream",
    "name_from_bitstream",
    "name_to_packed",
    "stamp_to_packed",
    "stamp_to_bitstream",
    "stamp_from_bitstream",
    "stamp_to_bytes",
    "stamp_from_bytes",
    "encoded_size_bits",
    "encoded_size_bytes",
]


# -- JSON codec --------------------------------------------------------------


def name_to_json(name: Name) -> List[str]:
    """Represent a name as a sorted list of its member strings."""
    return [str(s) if len(s) else "" for s in name.sorted_strings()]


def name_from_json(data: object) -> Name:
    """Rebuild a name from :func:`name_to_json` output."""
    if not isinstance(data, list) or not all(isinstance(item, str) for item in data):
        raise EncodingError(f"a JSON name must be a list of strings, got {data!r}")
    try:
        return Name(BitString.parse(item) for item in data)
    except Exception as exc:  # noqa: BLE001 - normalize to EncodingError
        raise EncodingError(f"invalid name payload {data!r}: {exc}") from exc


def stamp_to_json(stamp: VersionStamp) -> Dict[str, object]:
    """Represent a stamp as a JSON-serializable dictionary."""
    return {
        "update": name_to_json(stamp.update_component),
        "id": name_to_json(stamp.identity),
        "reducing": stamp.reducing,
    }


def stamp_from_json(data: object) -> VersionStamp:
    """Rebuild a stamp from :func:`stamp_to_json` output (or its JSON text)."""
    if isinstance(data, str):
        try:
            data = json.loads(data)
        except json.JSONDecodeError as exc:
            raise EncodingError(f"invalid JSON: {exc}") from exc
    if not isinstance(data, dict) or "update" not in data or "id" not in data:
        raise EncodingError(
            f"a JSON stamp must be an object with 'update' and 'id', got {data!r}"
        )
    update = name_from_json(data["update"])
    identity = name_from_json(data["id"])
    reducing = bool(data.get("reducing", True))
    try:
        return VersionStamp(update, identity, reducing=reducing)
    except Exception as exc:  # noqa: BLE001
        raise EncodingError(f"invalid stamp payload {data!r}: {exc}") from exc


# -- text codec ---------------------------------------------------------------


def stamp_to_text(stamp: VersionStamp) -> str:
    """The paper's ``[update | id]`` notation."""
    return str(stamp)


def stamp_from_text(text: str, *, reducing: bool = True) -> VersionStamp:
    """Parse the paper's ``[update | id]`` notation."""
    try:
        return VersionStamp.parse(text, reducing=reducing)
    except Exception as exc:  # noqa: BLE001
        raise EncodingError(f"invalid stamp text {text!r}: {exc}") from exc


# -- binary (trie) codec --------------------------------------------------------


def _trie_of(name: Name) -> dict:
    """Build the minimal binary trie containing the member strings as leaves.

    Iterates the name's canonical sorted tuple (deterministic insertion
    order) and reads bits straight off each string's packed integer code.
    """
    root: dict = {"member": False, "children": {}}
    for string in name:
        node = root
        code = string.code
        for shift in range(code.bit_length() - 2, -1, -1):
            bit = (code >> shift) & 1
            node = node["children"].setdefault(bit, {"member": False, "children": {}})
        node["member"] = True
    return root


def _emit_trie(node: dict, out: List[int]) -> None:
    out.append(1 if node["member"] else 0)
    if node["member"]:
        # Members of an antichain have no descendants in the minimal trie.
        return
    for bit in (0, 1):
        child = node["children"].get(bit)
        if child is None:
            out.append(0)
        else:
            out.append(1)
            _emit_trie(child, out)


def name_to_bitstream(name: Name) -> List[int]:
    """Encode a name as a list of bits using the trie walk described above."""
    bits: List[int] = []
    _emit_trie(_trie_of(name), bits)
    return bits


class _BitReader:
    """Sequential reader over a list of bits with bounds checking."""

    def __init__(self, bits: Iterable[int]) -> None:
        self._bits = list(bits)
        self._position = 0

    def read(self) -> int:
        if self._position >= len(self._bits):
            raise EncodingError("truncated bit stream")
        bit = self._bits[self._position]
        if bit not in (0, 1):
            raise EncodingError(f"bit stream may only contain 0/1, got {bit!r}")
        self._position += 1
        return bit

    @property
    def position(self) -> int:
        return self._position

    def remaining(self) -> int:
        return len(self._bits) - self._position


def _read_trie(reader: _BitReader, prefix: BitString, strings: List[BitString]) -> None:
    member = reader.read()
    if member:
        strings.append(prefix)
        return
    for bit in (0, 1):
        present = reader.read()
        if present:
            _read_trie(reader, prefix.append(bit), strings)


def name_from_bitstream(bits: Iterable[int]) -> Name:
    """Decode a name produced by :func:`name_to_bitstream`."""
    reader = _BitReader(bits)
    name = _read_name(reader)
    if reader.remaining():
        raise EncodingError(
            f"{reader.remaining()} trailing bits after decoding a name"
        )
    return name


def _read_name(reader: _BitReader) -> Name:
    strings: List[BitString] = []
    _read_trie(reader, BitString.empty(), strings)
    try:
        return Name(strings)
    except Exception as exc:  # noqa: BLE001
        raise EncodingError(f"decoded strings are not an antichain: {exc}") from exc


def stamp_to_bitstream(stamp: VersionStamp) -> List[int]:
    """Encode a stamp as the concatenation of its two component encodings."""
    return name_to_bitstream(stamp.update_component) + name_to_bitstream(stamp.identity)


# -- packed fast path ----------------------------------------------------------

#: Decode-side intern: the codec is canonical (distinct byte strings never
#: decode to equal stamps), so payload bytes are a perfect identity for the
#: decoded value and stamps decoded twice can share one object -- the same
#: idiom as the BitString and CausalHistory intern tables and the compare
#: memo.  This is what makes the anti-entropy steady state cheap: a peer
#: re-ships mostly-unchanged metadata every round, and every re-decode
#: after the first is a dictionary hit.  Bounded FIFO so a long-lived
#: process cannot grow it without limit; only successful decodes are
#: cached, so malformed payloads are re-rejected each time.
_DECODE_INTERN: Dict[tuple, VersionStamp] = {}
_DECODE_INTERN_MAX = 1 << 15

# Bound lazily on first use: importing :mod:`repro.kernel.wire` at module
# load would run the kernel package __init__ (which circles back through
# the clock classes), and a per-call ``import`` statement costs more than
# the byte conversion it serves on the hot path.
_wire = None


def _bind_wire() -> None:
    global _wire
    from ..kernel import wire

    _wire = wire


def _emit_name_packed(codes, lo, hi, depth, value, count):
    """Emit the trie of ``codes[lo:hi]`` (all sharing ``depth`` leading bits)
    into the packed accumulator, returning the updated ``(value, count)``.

    ``codes`` is a lex-sorted antichain of sentinel-prefixed packed codes;
    because lex order is trie pre-order, each child subtree is a contiguous
    slice found with one linear partition scan, so the whole walk is
    O(total bits) with no trie dictionary ever built.
    """
    code = codes[lo]
    if code.bit_length() - 1 == depth:
        # The shared prefix itself is a member: an antichain has nothing
        # below it, so this is a leaf (and lo + 1 == hi).
        return (value << 1) | 1, count + 1
    value <<= 1  # member? no
    count += 1
    mid = lo
    while mid < hi:
        c = codes[mid]
        if (c >> (c.bit_length() - 2 - depth)) & 1:
            break
        mid += 1
    if mid > lo:
        value, count = _emit_name_packed(
            codes, lo, mid, depth + 1, (value << 1) | 1, count + 1
        )
    else:
        value <<= 1
        count += 1
    if hi > mid:
        return _emit_name_packed(
            codes, mid, hi, depth + 1, (value << 1) | 1, count + 1
        )
    return value << 1, count + 1


def name_to_packed(name: Name) -> Tuple[int, int]:
    """The trie encoding of ``name`` as a packed ``(value, count)`` pair."""
    codes = name._codes
    if not codes:
        # Single non-member node with no children: bits 0 0 0.
        return 0, 3
    return _emit_name_packed(codes, 0, len(codes), 0, 0, 0)


def stamp_to_packed(stamp: VersionStamp) -> Tuple[int, int]:
    """The full stamp bit stream as one packed ``(value, count)`` pair."""
    value, count = name_to_packed(stamp.update_component)
    id_value, id_count = name_to_packed(stamp.identity)
    return (value << id_count) | id_value, count + id_count


def _read_name_codes(bits, pos):
    """Read one trie-coded name starting at character ``pos`` of ``bits``.

    ``bits`` is the payload's bit stream rendered as a ``'0'``/``'1'``
    string (one C-level ``format`` call), so each bit is a constant-time
    character compare instead of a fresh big-int shift.  Returns
    ``(codes, new_pos)`` with the member codes in pre-order -- which for a
    binary trie is exactly lexicographic order, so the result feeds
    :meth:`Name._from_codes` directly.  Iterative (explicit stack) so a
    deep crafted payload cannot blow the interpreter stack; running off
    the end of ``bits`` surfaces as ``IndexError`` for the caller to remap
    to a typed truncation error.
    """
    codes = []
    # Allocation-free DFS: ``prefix`` carries the current path (sentinel
    # code), and ``pending`` is a depth-indexed bitmask of nodes whose
    # right-presence bit still has to be read once their left subtree is
    # done -- those nodes are exactly the current path's ancestors, at
    # most one per depth, so one int replaces a stack of tuples.
    prefix = 1
    pending = 0
    depth = 0
    while True:
        if bits[pos] == "1":  # member leaf
            pos += 1
            codes.append(prefix)
        else:
            pos += 1
            pending |= 1 << depth
            if bits[pos] == "1":  # left child present: descend
                pos += 1
                prefix <<= 1
                depth += 1
                continue
            pos += 1
        # Subtree finished: resume at the deepest pending right-presence.
        while True:
            if not pending:
                return codes, pos
            d = pending.bit_length() - 1
            pending ^= 1 << d
            prefix >>= depth - d
            depth = d
            if bits[pos] == "1":
                pos += 1
                prefix = (prefix << 1) | 1
                depth += 1
                break
            pos += 1


def stamp_from_bitstream(bits: Iterable[int], *, reducing: bool = True) -> VersionStamp:
    """Decode a stamp produced by :func:`stamp_to_bitstream`."""
    reader = _BitReader(bits)
    update = _read_name(reader)
    identity = _read_name(reader)
    if reader.remaining():
        raise EncodingError(
            f"{reader.remaining()} trailing bits after decoding a stamp"
        )
    try:
        return VersionStamp(update, identity, reducing=reducing)
    except Exception as exc:  # noqa: BLE001
        raise EncodingError(f"decoded components do not form a stamp: {exc}") from exc


def stamp_to_bytes(stamp: VersionStamp) -> bytes:
    """Encode a stamp to bytes: a 2-byte bit count followed by packed bits.

    The packing (and its canonical-form validation on decode) is the
    length-prefixed packed-bits codec shared with the other bit-level
    codecs (:mod:`repro.kernel.wire`); the bit stream is built as one
    packed integer and converted with a single bulk ``int.to_bytes``.
    """
    if _wire is None:
        _bind_wire()
    value, count = stamp_to_packed(stamp)
    return _wire.packed_to_length_prefixed(value, count, count_bytes=2)


def stamp_from_bytes(payload, *, reducing: bool = True) -> VersionStamp:
    """Decode a stamp produced by :func:`stamp_to_bytes`.

    Accepts any byte buffer (``bytes``/``bytearray``/``memoryview``)
    without copying it.  Rejects (with :class:`EncodingError` subclasses)
    truncation, byte lengths that disagree with the declared bit count,
    and nonzero padding bits -- distinct byte strings never decode to
    equal stamps.
    """
    key = (bytes(payload), bool(reducing))
    cached = _DECODE_INTERN.get(key)
    if cached is not None:
        return cached
    # Inlined packed_from_length_prefixed(count_bytes=2): this is the
    # per-message hot path of every replication exchange.
    if len(payload) < 2:
        raise EnvelopeTruncatedError(
            f"packed bit stream needs a 2-byte length prefix, "
            f"got {len(payload)} bytes"
        )
    nbits = int.from_bytes(payload[:2], "big")
    body = payload[2:]
    if (nbits + 7) >> 3 != len(body):
        raise EncodingError(
            f"payload declares {nbits} bits but carries {len(body)} bytes"
        )
    padded = int.from_bytes(body, "big")
    pad = (-nbits) % 8
    if padded & ((1 << pad) - 1):
        raise EncodingError("nonzero padding bits in the final payload byte")
    bits = format(padded >> pad, "b").rjust(nbits, "0")
    try:
        update_codes, pos = _read_name_codes(bits, 0)
        identity_codes, pos = _read_name_codes(bits, pos)
    except IndexError:
        raise EncodingError("truncated bit stream") from None
    if pos != nbits:
        raise EncodingError(
            f"{nbits - pos} trailing bits after decoding a stamp"
        )
    # Trie leaves are prefix-free and arrive in pre-order, i.e. already the
    # canonical lex-sorted antichain the trusted Name factory expects.
    update = Name._from_codes(tuple(update_codes))
    identity = Name._from_codes(tuple(identity_codes))
    if not update.dominated_by(identity):
        raise EncodingError(
            f"decoded components do not form a stamp: invariant I1 violated "
            f"(update {update} is not dominated by id {identity})"
        )
    stamp = VersionStamp._make(update, identity, key[1])
    if len(_DECODE_INTERN) >= _DECODE_INTERN_MAX:
        del _DECODE_INTERN[next(iter(_DECODE_INTERN))]
    _DECODE_INTERN[key] = stamp
    return stamp


# -- size accounting --------------------------------------------------------------


def encoded_size_bits(stamp: VersionStamp) -> int:
    """Exact size, in bits, of the compact binary encoding of ``stamp``."""
    _, update_count = name_to_packed(stamp.update_component)
    _, identity_count = name_to_packed(stamp.identity)
    return update_count + identity_count


def encoded_size_bytes(stamp: VersionStamp) -> int:
    """Size, in bytes, of :func:`stamp_to_bytes` output (incl. length prefix)."""
    return len(stamp_to_bytes(stamp))
