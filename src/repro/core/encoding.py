"""Serialization of names and version stamps.

The paper argues (Section 3) that an "efficient use of space is also highly
desirable in order to support a practical use" of version stamps.  This
module provides three interchangeable codecs plus the size accounting used by
the space benchmarks:

* **text** -- the paper's human-readable ``[update | id]`` notation with
  ``+``-separated binary strings.
* **JSON** -- a portable dictionary representation for interoperability.
* **binary** -- a compact bit-level codec.  A name is an antichain, i.e. the
  set of leaves of a binary trie; the codec walks that trie emitting one
  "member leaf?" bit per node and one presence bit per child, which is
  self-delimiting and close to the information-theoretic minimum for the
  structures the mechanism produces.  Stamps concatenate the encodings of the
  two components; the byte form pads the final byte with zeros.

All functions raise :class:`~repro.core.errors.EncodingError` on malformed
input.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from .bitstring import BitString
from .errors import EncodingError
from .names import Name
from .stamp import VersionStamp

__all__ = [
    "name_to_json",
    "name_from_json",
    "stamp_to_json",
    "stamp_from_json",
    "stamp_to_text",
    "stamp_from_text",
    "name_to_bitstream",
    "name_from_bitstream",
    "stamp_to_bitstream",
    "stamp_from_bitstream",
    "stamp_to_bytes",
    "stamp_from_bytes",
    "encoded_size_bits",
    "encoded_size_bytes",
]


# -- JSON codec --------------------------------------------------------------


def name_to_json(name: Name) -> List[str]:
    """Represent a name as a sorted list of its member strings."""
    return [str(s) if len(s) else "" for s in name.sorted_strings()]


def name_from_json(data: object) -> Name:
    """Rebuild a name from :func:`name_to_json` output."""
    if not isinstance(data, list) or not all(isinstance(item, str) for item in data):
        raise EncodingError(f"a JSON name must be a list of strings, got {data!r}")
    try:
        return Name(BitString.parse(item) for item in data)
    except Exception as exc:  # noqa: BLE001 - normalize to EncodingError
        raise EncodingError(f"invalid name payload {data!r}: {exc}") from exc


def stamp_to_json(stamp: VersionStamp) -> Dict[str, object]:
    """Represent a stamp as a JSON-serializable dictionary."""
    return {
        "update": name_to_json(stamp.update_component),
        "id": name_to_json(stamp.identity),
        "reducing": stamp.reducing,
    }


def stamp_from_json(data: object) -> VersionStamp:
    """Rebuild a stamp from :func:`stamp_to_json` output (or its JSON text)."""
    if isinstance(data, str):
        try:
            data = json.loads(data)
        except json.JSONDecodeError as exc:
            raise EncodingError(f"invalid JSON: {exc}") from exc
    if not isinstance(data, dict) or "update" not in data or "id" not in data:
        raise EncodingError(
            f"a JSON stamp must be an object with 'update' and 'id', got {data!r}"
        )
    update = name_from_json(data["update"])
    identity = name_from_json(data["id"])
    reducing = bool(data.get("reducing", True))
    try:
        return VersionStamp(update, identity, reducing=reducing)
    except Exception as exc:  # noqa: BLE001
        raise EncodingError(f"invalid stamp payload {data!r}: {exc}") from exc


# -- text codec ---------------------------------------------------------------


def stamp_to_text(stamp: VersionStamp) -> str:
    """The paper's ``[update | id]`` notation."""
    return str(stamp)


def stamp_from_text(text: str, *, reducing: bool = True) -> VersionStamp:
    """Parse the paper's ``[update | id]`` notation."""
    try:
        return VersionStamp.parse(text, reducing=reducing)
    except Exception as exc:  # noqa: BLE001
        raise EncodingError(f"invalid stamp text {text!r}: {exc}") from exc


# -- binary (trie) codec --------------------------------------------------------


def _trie_of(name: Name) -> dict:
    """Build the minimal binary trie containing the member strings as leaves.

    Iterates the name's canonical sorted tuple (deterministic insertion
    order) and reads bits straight off each string's packed integer code.
    """
    root: dict = {"member": False, "children": {}}
    for string in name:
        node = root
        code = string.code
        for shift in range(code.bit_length() - 2, -1, -1):
            bit = (code >> shift) & 1
            node = node["children"].setdefault(bit, {"member": False, "children": {}})
        node["member"] = True
    return root


def _emit_trie(node: dict, out: List[int]) -> None:
    out.append(1 if node["member"] else 0)
    if node["member"]:
        # Members of an antichain have no descendants in the minimal trie.
        return
    for bit in (0, 1):
        child = node["children"].get(bit)
        if child is None:
            out.append(0)
        else:
            out.append(1)
            _emit_trie(child, out)


def name_to_bitstream(name: Name) -> List[int]:
    """Encode a name as a list of bits using the trie walk described above."""
    bits: List[int] = []
    _emit_trie(_trie_of(name), bits)
    return bits


class _BitReader:
    """Sequential reader over a list of bits with bounds checking."""

    def __init__(self, bits: Iterable[int]) -> None:
        self._bits = list(bits)
        self._position = 0

    def read(self) -> int:
        if self._position >= len(self._bits):
            raise EncodingError("truncated bit stream")
        bit = self._bits[self._position]
        if bit not in (0, 1):
            raise EncodingError(f"bit stream may only contain 0/1, got {bit!r}")
        self._position += 1
        return bit

    @property
    def position(self) -> int:
        return self._position

    def remaining(self) -> int:
        return len(self._bits) - self._position


def _read_trie(reader: _BitReader, prefix: BitString, strings: List[BitString]) -> None:
    member = reader.read()
    if member:
        strings.append(prefix)
        return
    for bit in (0, 1):
        present = reader.read()
        if present:
            _read_trie(reader, prefix.append(bit), strings)


def name_from_bitstream(bits: Iterable[int]) -> Name:
    """Decode a name produced by :func:`name_to_bitstream`."""
    reader = _BitReader(bits)
    name = _read_name(reader)
    if reader.remaining():
        raise EncodingError(
            f"{reader.remaining()} trailing bits after decoding a name"
        )
    return name


def _read_name(reader: _BitReader) -> Name:
    strings: List[BitString] = []
    _read_trie(reader, BitString.empty(), strings)
    try:
        return Name(strings)
    except Exception as exc:  # noqa: BLE001
        raise EncodingError(f"decoded strings are not an antichain: {exc}") from exc


def stamp_to_bitstream(stamp: VersionStamp) -> List[int]:
    """Encode a stamp as the concatenation of its two component encodings."""
    return name_to_bitstream(stamp.update_component) + name_to_bitstream(stamp.identity)


def stamp_from_bitstream(bits: Iterable[int], *, reducing: bool = True) -> VersionStamp:
    """Decode a stamp produced by :func:`stamp_to_bitstream`."""
    reader = _BitReader(bits)
    update = _read_name(reader)
    identity = _read_name(reader)
    if reader.remaining():
        raise EncodingError(
            f"{reader.remaining()} trailing bits after decoding a stamp"
        )
    try:
        return VersionStamp(update, identity, reducing=reducing)
    except Exception as exc:  # noqa: BLE001
        raise EncodingError(f"decoded components do not form a stamp: {exc}") from exc


def stamp_to_bytes(stamp: VersionStamp) -> bytes:
    """Encode a stamp to bytes: a 2-byte bit count followed by packed bits.

    The packing (and its canonical-form validation on decode) is the
    length-prefixed packed-bits codec shared with the other bit-level
    codecs (:mod:`repro.kernel.wire`).
    """
    from ..kernel.wire import bits_to_length_prefixed

    return bits_to_length_prefixed(stamp_to_bitstream(stamp), count_bytes=2)


def stamp_from_bytes(payload: bytes, *, reducing: bool = True) -> VersionStamp:
    """Decode a stamp produced by :func:`stamp_to_bytes`.

    Rejects (with :class:`EncodingError` subclasses) truncation, byte
    lengths that disagree with the declared bit count, and nonzero padding
    bits -- distinct byte strings never decode to equal stamps.
    """
    from ..kernel.wire import bits_from_length_prefixed

    return stamp_from_bitstream(
        bits_from_length_prefixed(payload, count_bytes=2), reducing=reducing
    )


# -- size accounting --------------------------------------------------------------


def encoded_size_bits(stamp: VersionStamp) -> int:
    """Exact size, in bits, of the compact binary encoding of ``stamp``."""
    return len(stamp_to_bitstream(stamp))


def encoded_size_bytes(stamp: VersionStamp) -> int:
    """Size, in bytes, of :func:`stamp_to_bytes` output (incl. length prefix)."""
    return len(stamp_to_bytes(stamp))
