"""Core implementation of version stamps (the paper's primary contribution).

The public surface of this subpackage:

* :class:`~repro.core.bitstring.BitString` -- finite binary strings with the
  prefix order (the poset *S* of Section 4).
* :class:`~repro.core.names.Name` -- finite antichains of binary strings, the
  join semilattice *N* used by both stamp components.
* :class:`~repro.core.stamp.VersionStamp` -- the stamp ``(update, id)`` with
  ``update``/``fork``/``join`` and the frontier comparison.
* :class:`~repro.core.frontier.Frontier` -- configurations of stamped
  elements following Definition 4.3.
* :mod:`~repro.core.reduction` -- the Section 6 join-simplification rule.
* :mod:`~repro.core.reroot` -- the Section 7 re-rooting garbage collector
  (discard the causally-dominated common past, re-root onto short strings).
* :mod:`~repro.core.invariants` -- executable checks of invariants I1-I3.
* :mod:`~repro.core.encoding` -- text/JSON/binary codecs and size accounting.
* :class:`~repro.core.order.Ordering` -- the shared comparison vocabulary.
* :mod:`~repro.core.refimpl` -- the retained text-based seed implementation,
  used only as a differential-test oracle and perf baseline.

Performance
-----------
The data layer is packed end to end: bit strings are sentinel-prefixed
machine integers (O(1) append/parent/sibling, shift-and-compare prefix
tests) and names are lex-sorted tuples of those codes (linear merges and
single-scan normalization instead of the seed's all-pairs rescans).  See the
module docstrings of :mod:`~repro.core.bitstring`, :mod:`~repro.core.names`
and :mod:`~repro.core.reduction` for per-operation complexity tables, and
run ``PYTHONPATH=src python benchmarks/perf_snapshot.py`` to regenerate the
tracked ``BENCH_ops.json`` throughput snapshot.
"""

from .bitstring import BitString, EMPTY
from .errors import (
    BitStringError,
    EncodingError,
    FrontierError,
    InvariantViolation,
    NameError_,
    ReproError,
    StampError,
)
from .frontier import Frontier
from .invariants import (
    InvariantReport,
    Violation,
    assert_invariants,
    check_all,
    check_i1,
    check_i2,
    check_i3,
    check_wellformed,
)
from .names import Name, is_antichain, maximal_strings
from .order import Ordering, ordering_from_leq, ordering_from_sets
from .reduction import (
    ReductionStats,
    find_sibling_pair,
    is_normal_form,
    normalize,
    reduce_stamp_pair,
    rewrite_once,
)
from .reroot import (
    RerootResult,
    common_past,
    complete_tiling,
    reroot_names,
    reroot_stamps,
    signature_partition,
)
from .stamp import VersionStamp

__all__ = [
    "BitString",
    "EMPTY",
    "Name",
    "is_antichain",
    "maximal_strings",
    "VersionStamp",
    "Frontier",
    "Ordering",
    "ordering_from_leq",
    "ordering_from_sets",
    "ReductionStats",
    "find_sibling_pair",
    "is_normal_form",
    "normalize",
    "reduce_stamp_pair",
    "rewrite_once",
    "RerootResult",
    "common_past",
    "complete_tiling",
    "reroot_names",
    "reroot_stamps",
    "signature_partition",
    "InvariantReport",
    "Violation",
    "assert_invariants",
    "check_all",
    "check_i1",
    "check_i2",
    "check_i3",
    "check_wellformed",
    "ReproError",
    "BitStringError",
    "NameError_",
    "StampError",
    "InvariantViolation",
    "FrontierError",
    "EncodingError",
]
