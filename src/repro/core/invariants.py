"""Executable checks of the paper's invariants I1, I2 and I3.

Section 4 establishes three invariants over every reachable configuration of
version stamps, and Section 6 proves that the join-simplification rewriting
preserves them.  This module turns them into runtime checks usable by tests,
the exhaustive model checker and failure-injection experiments:

* **I1** (per stamp): ``update ⊑ id``.
* **I2** (per pair of distinct frontier elements): every string of one id is
  incomparable with every string of the other id.
* **I3** (per ordered pair of distinct frontier elements): for every string
  ``r`` of ``x``'s update, ``{r} ⊑ id_y  ⇒  {r} ⊑ update_y``.

The checkers accept anything shaped like a mapping from labels to stamps
(including :class:`~repro.core.frontier.Frontier`) or a bare collection of
stamps when labels are irrelevant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from .errors import InvariantViolation
from .names import is_antichain
from .stamp import VersionStamp

__all__ = [
    "Violation",
    "InvariantReport",
    "check_i1",
    "check_i2",
    "check_i3",
    "check_wellformed",
    "check_all",
    "assert_invariants",
]

StampsLike = Union[Mapping[str, VersionStamp], Sequence[VersionStamp]]


@dataclass(frozen=True)
class Violation:
    """One invariant violation found in a configuration."""

    invariant: str
    elements: Tuple[str, ...]
    detail: str

    def __str__(self) -> str:
        involved = ", ".join(self.elements)
        return f"{self.invariant} violated by ({involved}): {self.detail}"


@dataclass
class InvariantReport:
    """The outcome of checking a configuration against all invariants."""

    violations: List[Violation] = field(default_factory=list)
    checked_stamps: int = 0
    checked_pairs: int = 0

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return not self.violations

    def raise_if_violated(self) -> None:
        """Raise :class:`InvariantViolation` for the first violation, if any."""
        if self.violations:
            first = self.violations[0]
            raise InvariantViolation(first.invariant, str(first))

    def __str__(self) -> str:
        if self.ok:
            return (
                f"all invariants hold over {self.checked_stamps} stamps "
                f"and {self.checked_pairs} pairs"
            )
        lines = [f"{len(self.violations)} invariant violation(s):"]
        lines.extend(f"  - {violation}" for violation in self.violations)
        return "\n".join(lines)


def _as_mapping(stamps: StampsLike) -> Dict[str, VersionStamp]:
    if isinstance(stamps, Mapping):
        return dict(stamps)
    return {f"#{index}": stamp for index, stamp in enumerate(stamps)}


def check_wellformed(stamps: StampsLike) -> List[Violation]:
    """Check that every stamp component is a well-formed name (an antichain)."""
    violations = []
    for label, stamp in _as_mapping(stamps).items():
        for component_name, component in (
            ("update", stamp.update_component),
            ("id", stamp.identity),
        ):
            if not is_antichain(component.strings):
                violations.append(
                    Violation(
                        "wellformedness",
                        (label,),
                        f"{component_name} component {component} is not an antichain",
                    )
                )
    return violations


def check_i1(stamps: StampsLike) -> List[Violation]:
    """I1: in every stamp the update component is dominated by the id."""
    violations = []
    for label, stamp in _as_mapping(stamps).items():
        if not stamp.update_component.dominated_by(stamp.identity):
            violations.append(
                Violation(
                    "I1",
                    (label,),
                    f"update {stamp.update_component} ⋢ id {stamp.identity}",
                )
            )
    return violations


def check_i2(stamps: StampsLike) -> List[Violation]:
    """I2: id strings of distinct frontier elements are pairwise incomparable."""
    mapping = _as_mapping(stamps)
    labels = list(mapping)
    violations = []
    for index, first in enumerate(labels):
        for second in labels[index + 1:]:
            id_first = mapping[first].identity
            id_second = mapping[second].identity
            # Fast path: the bisect-based disjointness walk decides the
            # invariant in O(k log m); the all-pairs scan runs only on
            # violation, to name the offending strings.
            if id_first.disjoint_ids(id_second):
                continue
            for r in id_first.strings:
                for s in id_second.strings:
                    if r.comparable(s):
                        violations.append(
                            Violation(
                                "I2",
                                (first, second),
                                f"id strings {r} and {s} are comparable",
                            )
                        )
    return violations


def check_i3(stamps: StampsLike) -> List[Violation]:
    """I3: update strings covered by another element's id are covered by its update."""
    mapping = _as_mapping(stamps)
    labels = list(mapping)
    violations = []
    for x in labels:
        for y in labels:
            if x == y:
                continue
            update_x = mapping[x].update_component
            update_y = mapping[y].update_component
            id_y = mapping[y].identity
            for r in update_x.strings:
                if id_y.covers_string(r) and not update_y.covers_string(r):
                    violations.append(
                        Violation(
                            "I3",
                            (x, y),
                            f"string {r} of update({x}) is below id({y}) "
                            f"but not below update({y})",
                        )
                    )
    return violations


def check_all(stamps: StampsLike) -> InvariantReport:
    """Run every invariant check and return a consolidated report."""
    mapping = _as_mapping(stamps)
    report = InvariantReport(checked_stamps=len(mapping))
    count = len(mapping)
    report.checked_pairs = count * (count - 1) // 2
    report.violations.extend(check_wellformed(mapping))
    report.violations.extend(check_i1(mapping))
    report.violations.extend(check_i2(mapping))
    report.violations.extend(check_i3(mapping))
    return report


def assert_invariants(stamps: StampsLike) -> None:
    """Raise :class:`InvariantViolation` unless all invariants hold."""
    check_all(stamps).raise_if_violated()
