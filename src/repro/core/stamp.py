"""Version stamps -- the paper's decentralized replacement for version vectors.

A version stamp is a pair ``(update, id)`` of :class:`~repro.core.names.Name`
values (Section 4).  The ``id`` component distinguishes the element from all
other coexisting elements of the frontier; the ``update`` component records
which updates are known to the element.  The three operations of
Definition 4.3 are:

* ``update``:  ``(u, i) → (i, i)`` -- the id is copied into the update.
* ``fork``:    ``(u, i) → (u, i·0), (u, i·1)`` -- each child appends one bit
  to every string of the id; the update component is unchanged.
* ``join``:    ``(ua, ia), (ub, ib) → (ua ⊔ ub, ia ⊔ ib)`` -- both components
  are joined in the name semilattice.

Comparing two stamps compares only their ``update`` components (the first
projection), exactly as the paper's frontier pre-order
``a ≼V b  iff  fst(V(a)) ⊑ fst(V(b))``.

Stamps come in two flavours:

* **non-reducing** (Section 4) -- joins keep every string;
* **reducing** (Section 6) -- after a join the stamp is rewritten to its
  normal form, collapsing sibling id strings; this is what a real
  implementation uses to keep stamps small.

The flavour is chosen per-stamp with the ``reducing`` flag and is sticky
across the derived stamps, so a whole system run can be carried out in either
model (the simulation runner exercises both and checks they induce the same
order).

Performance notes: derived stamps are built through a check-free internal
constructor with lazy hashing (the three operations preserve invariant I1 by
construction); the reducing ``join`` normalizes via the single-pass collapse
of :mod:`~repro.core.reduction` without ``ReductionStats`` bookkeeping (use
:meth:`VersionStamp.join_with_stats` when stats are wanted); and ``compare``
short-circuits on equal update components before hitting a bounded LRU memo
of the double-``dominated_by`` walk.

Examples
--------
>>> from repro.core.stamp import VersionStamp
>>> seed = VersionStamp.seed()
>>> left, right = seed.fork()
>>> left2 = left.update()
>>> merged = left2.join(right)
>>> merged.compare(left2).name
'AFTER'
>>> str(merged)
'[ε | ε]'
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Optional, Tuple

from .errors import StampError
from .names import Name
from .order import Ordering
from .reduction import ReductionStats, is_normal_form, normalize, reduce_stamp_pair

__all__ = ["VersionStamp"]


#: Names with more member strings than this are compared without memoization:
#: the LRU table holds strong references, and pathological (non-reducing)
#: workloads produce huge Names that would otherwise stay pinned in memory
#: for the life of the process.
_MEMO_MAX_STRINGS = 256


def _ordering_of(a: Name, b: Name) -> Ordering:
    forward = a.dominated_by(b)
    backward = b.dominated_by(a)
    if forward and backward:
        return Ordering.EQUAL
    if forward:
        return Ordering.BEFORE
    if backward:
        return Ordering.AFTER
    return Ordering.CONCURRENT


@lru_cache(maxsize=1 << 16)
def _cached_ordering(a: Name, b: Name) -> Ordering:
    """Memoized three-way comparison of two (unequal) update components.

    Frontier pruning and the lockstep experiments compare the same stamps
    against each other over and over; update components are immutable
    ``Name`` values with cached hashes, so one bounded LRU table turns the
    repeated double-``dominated_by`` walks into dictionary hits.  Callers
    handle the ``a == b`` fast path and the oversized-Name bypass before
    consulting the cache.
    """
    return _ordering_of(a, b)


def _update_ordering(a: Name, b: Name) -> Ordering:
    if len(a) + len(b) > _MEMO_MAX_STRINGS:
        return _ordering_of(a, b)
    return _cached_ordering(a, b)


class VersionStamp:
    """An immutable version stamp ``(update, id)``.

    Parameters
    ----------
    update:
        The update component; a :class:`Name` (or parseable text).
    identity:
        The id component; a :class:`Name` (or parseable text).
    reducing:
        When ``True`` (the default) joins normalize the resulting stamp with
        the Section 6 rewriting rule.  When ``False`` the stamp behaves as
        the non-reducing model of Section 4.

    Raises
    ------
    StampError
        If ``update`` is not dominated by ``identity`` (invariant I1 must
        hold for any individually well-formed stamp).
    """

    __slots__ = ("_update", "_identity", "_reducing", "_hash")

    def __init__(
        self,
        update: Name,
        identity: Name,
        *,
        reducing: bool = True,
        _validate: bool = True,
    ) -> None:
        if isinstance(update, str):
            update = Name.parse(update)
        if isinstance(identity, str):
            identity = Name.parse(identity)
        if not isinstance(update, Name) or not isinstance(identity, Name):
            raise StampError("update and identity must be Name values")
        if _validate and not update.dominated_by(identity):
            raise StampError(
                f"invariant I1 violated at construction: update {update} "
                f"is not dominated by id {identity}"
            )
        object.__setattr__(self, "_update", update)
        object.__setattr__(self, "_identity", identity)
        object.__setattr__(self, "_reducing", bool(reducing))
        object.__setattr__(self, "_hash", None)

    @classmethod
    def _make(
        cls, update: Name, identity: Name, reducing: bool
    ) -> "VersionStamp":
        """Internal fast constructor: trusted components, lazy hash.

        The three Definition 4.3 operations preserve invariant I1 by
        construction, so the stamps they derive skip every check.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "_update", update)
        object.__setattr__(self, "_identity", identity)
        object.__setattr__(self, "_reducing", reducing)
        object.__setattr__(self, "_hash", None)
        return self

    # -- constructors -------------------------------------------------

    @classmethod
    def seed(cls, *, reducing: bool = True) -> "VersionStamp":
        """The initial stamp ``({ε}, {ε})`` of a brand new system.

        A dynamic replication system starts from a single element holding
        the seed stamp; every other stamp is derived from it through
        ``update``, ``fork`` and ``join``.
        """
        return cls(Name.seed(), Name.seed(), reducing=reducing, _validate=False)

    @classmethod
    def parse(cls, text: str, *, reducing: bool = True) -> "VersionStamp":
        """Parse the paper's ``[update | id]`` notation.

        Examples
        --------
        >>> VersionStamp.parse("[0 | 0+1]").identity.to_text()
        '0+1'
        """
        stripped = text.strip()
        if not (stripped.startswith("[") and stripped.endswith("]")):
            raise StampError(f"stamp text must be wrapped in brackets: {text!r}")
        body = stripped[1:-1]
        if "|" not in body:
            raise StampError(f"stamp text must contain '|': {text!r}")
        update_text, identity_text = body.split("|", 1)
        return cls(
            Name.parse(update_text.strip()),
            Name.parse(identity_text.strip()),
            reducing=reducing,
        )

    # -- immutability / protocol ---------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("VersionStamp instances are immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("VersionStamp instances are immutable")

    @property
    def update_component(self) -> Name:
        """The ``update`` component (the paper's ``fst``)."""
        return self._update

    @property
    def identity(self) -> Name:
        """The ``id`` component (the paper's ``snd``)."""
        return self._identity

    @property
    def reducing(self) -> bool:
        """Whether joins of this stamp normalize their result."""
        return self._reducing

    def components(self) -> Tuple[Name, Name]:
        """Return the ``(update, id)`` pair."""
        return self._update, self._identity

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("VersionStamp", self._update, self._identity))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        """Structural equality of the two components.

        Note that *version equivalence* (having seen the same updates) is a
        different, coarser relation exposed by :meth:`equivalent`.
        """
        if isinstance(other, VersionStamp):
            return self._update == other._update and self._identity == other._identity
        return NotImplemented

    def __repr__(self) -> str:
        flavour = "" if self._reducing else ", reducing=False"
        return f"VersionStamp.parse({str(self)!r}{flavour})"

    def __str__(self) -> str:
        return f"[{self._update.to_text()} | {self._identity.to_text()}]"

    # -- the three operations of Definition 4.3 -------------------------

    def update(self) -> "VersionStamp":
        """Record an update: ``(u, i) → (i, i)``.

        After an update the stamp's knowledge equals its identity, so further
        updates without intervening forks or joins leave the stamp unchanged
        -- information irrelevant to frontier comparison is deliberately
        discarded (Section 3).
        """
        return VersionStamp._make(self._identity, self._identity, self._reducing)

    def event(self) -> "VersionStamp":
        """Protocol alias for :meth:`update` (the kernel's fork/event/join name)."""
        return self.update()

    def fork(self) -> Tuple["VersionStamp", "VersionStamp"]:
        """Split into two stamps with distinct, autonomous identities.

        ``(u, i) → (u, i·0), (u, i·1)``.  No communication or identifier
        authority is needed: the two children extend the parent's id with a
        0 and a 1 respectively, which keeps all frontier ids pairwise
        incomparable (invariant I2).
        """
        zero_id, one_id = self._identity.fork()
        left = VersionStamp._make(self._update, zero_id, self._reducing)
        right = VersionStamp._make(self._update, one_id, self._reducing)
        return left, right

    def join(self, other: "VersionStamp") -> "VersionStamp":
        """Merge with ``other``: ``(ua ⊔ ub, ia ⊔ ib)``.

        In the reducing model the result is rewritten to its normal form
        (Section 6), collapsing sibling id strings so that ids stay
        proportional to the size of the frontier.
        """
        if not isinstance(other, VersionStamp):
            raise StampError(f"cannot join a stamp with {type(other).__name__}")
        update = self._update.join(other._update)
        if self._update is self._identity and other._update is other._identity:
            # Freshly updated stamps satisfy update ≡ id, so the two
            # component joins coincide; share the merge (and the object, so
            # downstream joins keep hitting this fast path).
            identity = update
        else:
            identity = self._identity.join(other._identity)
        if self._reducing or other._reducing:
            # Plain joins need no ReductionStats; normalize directly so the
            # size bookkeeping of reduce_stamp_pair stays off this hot path
            # (and the non-reducing path skips reduction work entirely).
            update, identity, _steps = normalize(update, identity)
        return VersionStamp._make(
            update, identity, self._reducing or other._reducing
        )

    def join_with_stats(
        self, other: "VersionStamp"
    ) -> Tuple["VersionStamp", ReductionStats]:
        """Like :meth:`join` but also report the reduction statistics.

        Used by the benchmarks to measure how effective the Section 6
        simplification is on different workloads.  The join is always
        normalized, regardless of the ``reducing`` flag.
        """
        update = self._update.join(other._update)
        identity = self._identity.join(other._identity)
        update, identity, stats = reduce_stamp_pair(update, identity)
        joined = VersionStamp._make(
            update, identity, self._reducing or other._reducing
        )
        return joined, stats

    # -- derived operations ----------------------------------------------

    def sync(self, other: "VersionStamp") -> Tuple["VersionStamp", "VersionStamp"]:
        """Synchronize two replicas: join then fork (Section 1.1).

        Synchronization in the fork/join model is represented by joining the
        two replicas and forking the result, which leaves both participants
        with the combined knowledge and fresh, distinct identities.
        """
        return self.join(other).fork()

    def normalized(self) -> "VersionStamp":
        """Return the Section 6 normal form of this stamp."""
        update, identity, _steps = normalize(self._update, self._identity)
        return VersionStamp._make(update, identity, self._reducing)

    def is_normalized(self) -> bool:
        """Return ``True`` iff no rewriting-rule step applies to this stamp."""
        return is_normal_form(self._identity)

    def non_reducing(self) -> "VersionStamp":
        """Return the same stamp with the non-reducing behaviour selected."""
        return VersionStamp._make(self._update, self._identity, False)

    def as_reducing(self) -> "VersionStamp":
        """Return the same stamp with the reducing behaviour selected."""
        return VersionStamp._make(self._update, self._identity, True)

    # -- comparison --------------------------------------------------------

    def leq(self, other: "VersionStamp") -> bool:
        """The frontier pre-order: ``fst(self) ⊑ fst(other)``."""
        return self._update.dominated_by(other._update)

    def compare(self, other: "VersionStamp") -> Ordering:
        """Three-way comparison of the update knowledge of two stamps.

        Returns :class:`~repro.core.order.Ordering` describing ``self``
        relative to ``other``; by Corollary 5.2 this matches the comparison
        of the underlying causal histories for any two frontier elements.

        Equal update components short-circuit to ``EQUAL`` (the name order
        is a partial order, so equality decides the comparison outright);
        unequal pairs go through a memoized double-``dominated_by``.
        """
        a, b = self._update, other._update
        if a is b or a == b:
            return Ordering.EQUAL
        return _update_ordering(a, b)

    def equivalent(self, other: "VersionStamp") -> bool:
        """True when both stamps have seen exactly the same updates."""
        return self.compare(other) is Ordering.EQUAL

    def dominates(self, other: "VersionStamp") -> bool:
        """True when ``self`` has seen every update known to ``other``."""
        return other.leq(self)

    def strictly_dominates(self, other: "VersionStamp") -> bool:
        """True when ``self`` dominates ``other`` and they are not equivalent."""
        return self.compare(other) is Ordering.AFTER

    def obsolete_relative_to(self, other: "VersionStamp") -> bool:
        """The paper's obsolescence: ``other`` strictly dominates ``self``."""
        return self.compare(other) is Ordering.BEFORE

    def concurrent(self, other: "VersionStamp") -> bool:
        """True when the stamps are mutually inconsistent (in conflict)."""
        return self.compare(other) is Ordering.CONCURRENT

    # -- size accounting -----------------------------------------------------

    def size_in_bits(self) -> int:
        """Encoded size of the stamp (both components), in bits."""
        return self._update.size_in_bits() + self._identity.size_in_bits()

    def encoded_size_bits(self) -> int:
        """Exact bit size of the compact trie encoding (the kernel yardstick).

        Unlike :meth:`size_in_bits` (the sum of the raw string lengths, the
        model used by the paper's informal size arguments), this is the
        length of the self-delimiting trie bit stream actually put on the
        wire by :func:`repro.core.encoding.stamp_to_bitstream`.
        """
        from .encoding import encoded_size_bits

        return encoded_size_bits(self)

    def to_bytes(self) -> bytes:
        """Compact binary encoding (:func:`repro.core.encoding.stamp_to_bytes`).

        This is the raw family payload; the epoch-tagged wire envelope lives
        one level up, in :mod:`repro.kernel.envelope`.
        """
        from .encoding import stamp_to_bytes

        return stamp_to_bytes(self)

    @classmethod
    def from_bytes(cls, payload: bytes, *, reducing: bool = True) -> "VersionStamp":
        """Decode :meth:`to_bytes` output."""
        from .encoding import stamp_from_bytes

        return stamp_from_bytes(payload, reducing=reducing)

    def id_depth(self) -> int:
        """Length of the longest string in the id component."""
        return self._identity.max_depth()
