"""Re-rooting garbage collection for version stamps (Section 7 of the paper).

The Section 6 rewriting rule only collapses *sibling* id strings, so a
synchronization chain that never reassembles siblings (``sync(a,b)``,
``sync(b,c)``, ``sync(c,a)``, ...) grows ids and update names without bound.
Section 7 observes that most of that structure is *causally dominated common
past*: knowledge every live element already shares, which can never again
discriminate an ordering among them.  This module implements the discussion
as a concrete algorithm: compute the common past of a frontier, discard it,
and re-root the surviving stamps onto fresh short bitstrings.

The construction
----------------
Write ``↓n`` for the down-set denoted by a name ``n`` (the set of all
prefixes of its member strings).  For a frontier ``{l ↦ (u_l, i_l)}`` define
the *signature* of a binary string ``s`` as ``sig(s) = {l | s ∈ ↓u_l}`` --
the set of live elements whose update knowledge covers ``s``.  Two facts
drive the algorithm:

* every pairwise comparison is decided by signatures alone:
  ``u_a ⊑ u_b  ⟺  ↓u_a ⊆ ↓u_b  ⟺  every realized signature containing a
  contains b``;
* comparisons of any *future* joins of live elements are decided by which
  signatures are realized, because a join's down-set is the union of its
  inputs' down-sets (new post-reroot updates occupy fresh strings and are
  ordered by the mechanism itself).

So a re-rooted frontier is correct -- now and for every continuation --
exactly when it realizes the same signatures (the construction below may
additionally realize *unions* of old signatures, which cannot flip any
inclusion: an element hitting a union hits one of its realized parts).
The algorithm:

1. enumerate the realized signatures ``Σ`` by walking every prefix of every
   update string (``O(total bits)`` integer shifts on the packed codes);
2. build a complete balanced tiling of the binary tree with ``|Σ|`` leaves
   and assign each signature ``σ`` a *branch root* ``p_σ`` (larger
   signatures get the shallower leaves);
3. within branch ``σ``, tile the subtree among the members of ``σ``:
   element ``l ∈ σ`` owns the tile ``p_σ · t_l``;
4. emit, for each live element ``l``:

   * ``id'_l  = { p_σ · t_l : σ ∋ l }`` -- its tiles, one per signature,
   * ``u'_l   = { p_σ : σ ∋ l }``      -- the branch roots it knows,

   normalized with the Section 6 rule.

The common past -- the region whose signature is the full frontier -- is
where the unbounded structure lived; it collapses to the single branch
``p_Σmax`` (to ``ε`` itself when knowledge is uniform), which is the
"discard what is common knowledge" of Section 7.

Why it is correct
-----------------
* **Orderings**: ``u'_a ⊑ u'_b ⟺ ∀σ: a ∈ σ ⇒ b ∈ σ ⟺ u_a ⊑ u_b`` --
  branch roots form an antichain, so ``p_σ`` is covered by ``u'_b`` iff
  ``b ∈ σ``.  Equality, strict dominance and concurrency follow.
* **I1**: each ``p_σ ∈ u'_l`` is a prefix of the tile ``p_σ · t_l ∈ id'_l``.
* **I2**: tiles of distinct elements sit in distinct branches or are
  distinct tiles of one branch tiling -- pairwise incomparable either way.
* **I3**: ``p_σ`` is below ``id'_y`` only via ``y``'s tile in branch ``σ``,
  i.e. only when ``y ∈ σ``, and then ``p_σ ∈ u'_y``.
* **Reachability**: the output is a configuration a fresh system could have
  reached (fork the seed into the branch antichain; update and fork each
  branch element into its tiles; join each element's tiles), so every
  theorem about reachable configurations keeps applying afterwards.

The paper leaves the *coordination* required to re-root underspecified; the
choice made here is the simplest sound one: re-rooting is a frontier-wide
synchronous operation (every live stamp is rewritten at once), suitable for
a store that owns its frontier.  See ``ROADMAP.md`` for the trade-offs.

Sizes after a re-root depend only on the frontier, never on trace length:
at most ``2^|L| - 1`` signatures can be realized, and on the sync-chain
workloads that trigger the pathology ``|Σ|`` stays near ``|L|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from .bitstring import BitString
from .errors import StampError
from .names import Name
from .reduction import normalize
from .stamp import VersionStamp

__all__ = [
    "common_past",
    "signature_partition",
    "complete_tiling",
    "reroot_names",
    "reroot_stamps",
    "reroot_group",
    "RerootResult",
]


def common_past(updates: Iterable[Name]) -> Name:
    """The causally-dominated common past of a collection of update names.

    Returns the greatest lower bound of the update components in the name
    order: the antichain of maximal strings covered by *every* name.  This
    is exactly the structure a re-root discards -- it is common knowledge,
    so it can never again discriminate an ordering among the live elements.
    """
    names = list(updates)
    if not names:
        return Name.empty()
    first, rest = names[0], names[1:]
    shared: List[BitString] = []
    for string in first:
        # Walk up from each member of the first name to the deepest prefix
        # covered by every other name; collect and keep the maximal ones.
        candidate = string
        while rest and not all(name.covers_string(candidate) for name in rest):
            if not candidate:
                break
            candidate = candidate.parent()
        if all(name.covers_string(candidate) for name in rest):
            shared.append(candidate)
    return Name.from_down_set(shared)


def signature_partition(
    updates: Mapping[str, Name]
) -> Dict[Tuple[str, ...], List[BitString]]:
    """Partition the covered string space by *signature*.

    Maps each realized signature -- a sorted tuple of the labels whose
    update component covers a string -- to the maximal strings realizing
    it.  The union of all down-sets is walked once: every prefix of every
    member string of every update, ``O(total bits)`` packed-integer shifts.
    """
    masks: Dict[int, int] = {}
    labels = sorted(updates)
    for position, label in enumerate(labels):
        bit = 1 << position
        for string in updates[label]:
            code = string.code
            while code:
                if masks.get(code, 0) & bit:
                    # This label already walked this prefix to the root via
                    # an earlier member, so everything above is credited too.
                    break
                masks[code] = masks.get(code, 0) | bit
                code >>= 1
    by_signature: Dict[Tuple[str, ...], List[int]] = {}
    for code, mask in masks.items():
        signature = tuple(
            label for position, label in enumerate(labels) if mask & (1 << position)
        )
        by_signature.setdefault(signature, []).append(code)
    result: Dict[Tuple[str, ...], List[BitString]] = {}
    for signature, codes in by_signature.items():
        strings = [BitString._from_code(code) for code in codes]
        result[signature] = sorted(Name.from_down_set(strings))
    return result


def complete_tiling(count: int) -> List[BitString]:
    """A canonical complete tiling of the binary tree with ``count`` tiles.

    The tiles are pairwise incomparable and their name-join collapses to
    ``{ε}``: they partition the whole string space.  Built breadth-first
    (split the shallowest tile until enough exist), so the tiling is
    balanced -- depths differ by at most one -- and deterministic.  The
    result is ordered shallowest-first.
    """
    if count < 1:
        raise StampError("a tiling needs at least one tile")
    tiles: List[BitString] = [BitString.empty()]
    head = 0
    while len(tiles) - head < count:
        parent = tiles[head]
        head += 1
        tiles.append(parent.zero())
        tiles.append(parent.one())
    live = tiles[head:]
    return sorted(live, key=lambda tile: (len(tile), tile.code))


def _assign_branches(
    updates: Mapping[str, Name],
    signatures: Sequence[Tuple[str, ...]],
) -> Dict[str, Tuple[Name, Name]]:
    """Build the re-rooted ``(update', id')`` pairs from realized signatures."""
    branches = complete_tiling(len(signatures))
    new_updates: Dict[str, List[BitString]] = {label: [] for label in updates}
    new_ids: Dict[str, List[BitString]] = {label: [] for label in updates}
    for signature, branch in zip(signatures, branches):
        tiles = complete_tiling(len(signature))
        for label, tile in zip(signature, tiles):
            new_updates[label].append(branch)
            new_ids[label].append(branch + tile)
    return {
        label: (Name(new_updates[label]), Name(new_ids[label]))
        for label in updates
    }


def _validated_partition(
    updates: Mapping[str, Name]
) -> Dict[Tuple[str, ...], List[BitString]]:
    for label, update in updates.items():
        if not update:
            raise StampError(
                f"cannot re-root element {label!r} with an empty update name"
            )
    return signature_partition(updates)


def _branch_order(partition: Iterable[Tuple[str, ...]]) -> List[Tuple[str, ...]]:
    """Realized signatures in deterministic branch-assignment order.

    The largest signatures -- the common past first among them -- take the
    shallowest branch roots of the new tiling.
    """
    return sorted(partition, key=lambda sig: (-len(sig), sig))


def reroot_names(updates: Mapping[str, Name]) -> Dict[str, Tuple[Name, Name]]:
    """Re-root a frontier's update components onto fresh short bitstrings.

    Returns ``label -> (update', id')`` built by the signature construction
    described in the module docstring.  Both components are returned
    *before* Section 6 normalization; callers building stamps should
    normalize the pair (:func:`reroot_stamps` does).
    """
    if not updates:
        return {}
    return _assign_branches(updates, _branch_order(_validated_partition(updates)))


@dataclass(frozen=True)
class RerootResult:
    """What one frontier-wide re-root did.

    Attributes
    ----------
    stamps:
        The re-rooted ``label -> stamp`` mapping.
    discarded_past:
        The common-past name that was causally dominated by every live
        element and is no longer explicitly represented.
    signature_count:
        Number of distinct knowledge regions preserved (``|Σ|``).
    bits_before / bits_after:
        Total encoded stamp bits across the frontier, before and after.
    """

    stamps: Dict[str, VersionStamp]
    discarded_past: Name
    signature_count: int
    bits_before: int
    bits_after: int

    @property
    def bits_saved(self) -> int:
        """Encoded bits reclaimed by the re-root (negative if it grew)."""
        return self.bits_before - self.bits_after

    def __str__(self) -> str:
        return (
            f"reroot: {len(self.stamps)} stamps, {self.signature_count} "
            f"signatures, {self.bits_before} -> {self.bits_after} bits "
            f"(saved {self.bits_saved})"
        )


def reroot_stamps(stamps: Mapping[str, VersionStamp]) -> RerootResult:
    """Re-root a whole frontier of version stamps.

    Every live stamp is rewritten at once: the causally-dominated common
    past is discarded and the surviving knowledge regions are re-encoded on
    fresh short bitstrings.  All pairwise orderings among the live stamps
    (and among any of their future derivations) are preserved, and the
    output satisfies invariants I1-I3; the property tests cross-check both
    claims against the pre-GC matrix and the reference implementation.

    Raises
    ------
    StampError
        If the mapping is empty or a stamp has an empty update component
        (impossible for stamps reachable from a seed).
    """
    if not stamps:
        raise StampError("cannot re-root an empty frontier")
    bits_before = sum(stamp.size_in_bits() for stamp in stamps.values())
    updates = {label: stamp.update_component for label, stamp in stamps.items()}
    partition = _validated_partition(updates)
    signatures = _branch_order(partition)
    # The common past is exactly the full-frontier signature's region (a
    # string is common knowledge iff *every* live update covers it), so the
    # partition already holds it -- no extra meet computation.
    past = Name(partition.get(tuple(sorted(updates)), ()))
    rerooted = _assign_branches(updates, signatures)
    new_stamps: Dict[str, VersionStamp] = {}
    for label, stamp in stamps.items():
        update, identity = rerooted[label]
        if stamp.reducing:
            update, identity, _steps = normalize(update, identity)
        # The public constructor re-validates I1 -- a re-root must never
        # emit an ill-formed stamp, and this runs far from any hot path.
        new_stamps[label] = VersionStamp(
            update, identity, reducing=stamp.reducing
        )
    bits_after = sum(stamp.size_in_bits() for stamp in new_stamps.values())
    return RerootResult(
        stamps=new_stamps,
        discarded_past=past,
        signature_count=len(signatures),
        bits_before=bits_before,
        bits_after=bits_after,
    )


def reroot_group(stamps: Sequence[VersionStamp]) -> List[VersionStamp]:
    """Re-root an ordered group of stamps, positionally.

    The sequence form of :func:`reroot_stamps` used by the replicated
    store's decentralized compaction (epoch gossip): the group of live
    holders of one key is re-rooted as its own frontier, and the rewritten
    stamps come back in input order.  All pairwise orderings within the
    group are preserved; in the compaction protocol the group is verified
    pairwise EQUAL first, so the result is the minimal tiling of one
    shared knowledge region -- the stamps a freshly forked seed would
    produce.
    """
    labeled = {f"member-{index}": stamp for index, stamp in enumerate(stamps)}
    result = reroot_stamps(labeled)
    return [result.stamps[f"member-{index}"] for index in range(len(stamps))]
