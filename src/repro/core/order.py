"""Ordering vocabulary shared by every causality mechanism in the library.

Section 2 of the paper distinguishes three situations when comparing two
coexisting (frontier) elements:

* **Equivalence** -- both have seen exactly the same updates.
* **Obsolescence** -- one has seen all the updates of the other and at least
  one more (the other is *obsolete*, the first *dominates*).
* **Mutual inconsistency** -- each has seen at least one update the other has
  not (they are *concurrent* / in conflict).

:class:`Ordering` encodes the four possible outcomes of an asymmetric
comparison ``compare(a, b)`` and every mechanism in the library (version
stamps, causal histories, version vectors, dynamic version vectors, interval
tree clocks) reports its comparisons with it, which is what lets the lockstep
simulation runner check that they agree.
"""

from __future__ import annotations

import enum
from typing import Callable, TypeVar

__all__ = ["Ordering", "ordering_from_leq", "ordering_from_sets"]

T = TypeVar("T")


class Ordering(enum.Enum):
    """Result of comparing two versions ``a`` and ``b``.

    The values describe ``a`` relative to ``b``.
    """

    #: ``a`` and ``b`` have seen exactly the same updates.
    EQUAL = "equal"
    #: ``a`` is strictly dominated by ``b`` (``a`` is obsolete relative to ``b``).
    BEFORE = "before"
    #: ``a`` strictly dominates ``b`` (``b`` is obsolete relative to ``a``).
    AFTER = "after"
    #: ``a`` and ``b`` are mutually inconsistent (concurrent, in conflict).
    CONCURRENT = "concurrent"

    def flipped(self) -> "Ordering":
        """The result of the comparison with the arguments swapped."""
        if self is Ordering.BEFORE:
            return Ordering.AFTER
        if self is Ordering.AFTER:
            return Ordering.BEFORE
        return self

    @property
    def is_ordered(self) -> bool:
        """True when the two versions are causally related (not concurrent)."""
        return self is not Ordering.CONCURRENT

    @property
    def dominates(self) -> bool:
        """True when ``a`` has seen every update of ``b`` (EQUAL or AFTER)."""
        return self in (Ordering.EQUAL, Ordering.AFTER)

    @property
    def dominated(self) -> bool:
        """True when ``b`` has seen every update of ``a`` (EQUAL or BEFORE)."""
        return self in (Ordering.EQUAL, Ordering.BEFORE)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def ordering_from_leq(a: T, b: T, leq: Callable[[T, T], bool]) -> Ordering:
    """Derive an :class:`Ordering` from a pre-order predicate ``leq``.

    ``leq(x, y)`` must return ``True`` iff ``x`` is dominated by ``y`` (has
    seen no update that ``y`` has not).  Every mechanism whose comparison is
    a pre-order can reuse this helper.
    """
    forward = leq(a, b)
    backward = leq(b, a)
    if forward and backward:
        return Ordering.EQUAL
    if forward:
        return Ordering.BEFORE
    if backward:
        return Ordering.AFTER
    return Ordering.CONCURRENT


def ordering_from_sets(a: frozenset, b: frozenset) -> Ordering:
    """Derive an :class:`Ordering` from two sets of update events.

    This is the causal-history comparison of Section 2: set equality,
    strict inclusion either way, or incomparability.
    """
    if a == b:
        return Ordering.EQUAL
    if a < b:
        return Ordering.BEFORE
    if a > b:
        return Ordering.AFTER
    return Ordering.CONCURRENT
