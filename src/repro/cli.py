"""Command-line interface to the version-stamp library.

Installed as the ``repro`` console script (or run with ``python -m
repro.cli``).  The CLI exposes the pieces a user reaches for first:

* ``repro stamp ...``     -- manipulate stamps in the paper's ``[u | i]``
  notation (fork, update, join, compare, normalize, inspect sizes);
* ``repro figures``       -- regenerate Figures 1-4 and report paper-vs-measured;
* ``repro check``         -- run the exhaustive model checker (invariants +
  Proposition 5.1) up to a bounded number of operations;
* ``repro simulate``      -- generate a workload, replay it against every
  mechanism (or one registered clock family via ``--clock``), and report
  ordering agreement and metadata sizes;
* ``repro kernel ...``    -- list the registered clock families and
  round-trip clocks through the epoch-tagged wire envelope;
* ``repro sync-bench``    -- measure batched-stream vs per-envelope
  anti-entropy throughput of the wire sync engine for any clock family;
* ``repro panasync ...``  -- track dependencies among file copies on disk.

Every command prints plain text and exits non-zero on failure, so the CLI is
usable from scripts and CI jobs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import __version__
from . import kernel
from .analysis.diagrams import render_trace
from .analysis.figures import (
    FIGURE1_EXPECTED,
    FIGURE4_EXPECTED,
    figure1_version_vectors,
    figure3_encoding,
    figure4_stamps,
)
from .analysis.reporting import ExperimentReport, render_reports
from .core.encoding import encoded_size_bits, stamp_from_text
from .core.stamp import VersionStamp
from .panasync.tools import Panasync
from .sim.exhaustive import explore
from .sim.metrics import SweepTable
from .sim.runner import LockstepRunner
from .sim.workload import (
    churn_trace,
    fixed_replica_trace,
    partitioned_trace,
    random_dynamic_trace,
)

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------------
# stamp subcommand
# ---------------------------------------------------------------------------


def _load_stamp(text: str, *, reducing: bool = True) -> VersionStamp:
    return stamp_from_text(text, reducing=reducing)


def _cmd_stamp(args: argparse.Namespace) -> int:
    action = args.stamp_command
    if action == "seed":
        print(VersionStamp.seed())
        return 0
    if action == "parse":
        stamp = _load_stamp(args.stamp)
        print(f"stamp:      {stamp}")
        print(f"update:     {stamp.update_component.to_text()}")
        print(f"id:         {stamp.identity.to_text()}")
        print(f"normalized: {stamp.is_normalized()}")
        print(f"size:       {encoded_size_bits(stamp)} bits (compact binary encoding)")
        return 0
    if action == "update":
        print(_load_stamp(args.stamp).update())
        return 0
    if action == "fork":
        left, right = _load_stamp(args.stamp).fork()
        print(left)
        print(right)
        return 0
    if action == "join":
        reducing = not args.no_reduce
        first = _load_stamp(args.first, reducing=reducing)
        second = _load_stamp(args.second, reducing=reducing)
        print(first.join(second))
        return 0
    if action == "normalize":
        print(_load_stamp(args.stamp).normalized())
        return 0
    if action == "compare":
        first = _load_stamp(args.first)
        second = _load_stamp(args.second)
        print(first.compare(second).value)
        return 0
    raise AssertionError(f"unhandled stamp action {action!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# figures subcommand
# ---------------------------------------------------------------------------


def _cmd_figures(_args: argparse.Namespace) -> int:
    reports: List[ExperimentReport] = []

    figure1 = figure1_version_vectors()
    report1 = ExperimentReport("FIG1", "Version vectors among three replicas")
    for replica, expected in FIGURE1_EXPECTED.items():
        report1.add(f"replica {replica} timeline", expected, figure1.timelines[replica])
    reports.append(report1)

    figure3 = figure3_encoding()
    report3 = ExperimentReport("FIG3", "Fixed replicas under fork-and-join dynamics")
    report3.add("stamps/vectors/causal histories agree at every checkpoint", True, figure3.all_agree())
    reports.append(report3)

    figure4 = figure4_stamps()
    report4 = ExperimentReport("FIG4", "Version stamps of the Figure 2 evolution")
    for key, expected in FIGURE4_EXPECTED.items():
        report4.add(key, expected, figure4.stamps.get(key, "<missing>"))
    reports.append(report4)

    print(render_reports(reports))
    return 0 if all(report.ok for report in reports) else 1


# ---------------------------------------------------------------------------
# check subcommand (exhaustive model checking)
# ---------------------------------------------------------------------------


def _cmd_check(args: argparse.Namespace) -> int:
    result = explore(
        args.operations,
        max_frontier=args.max_frontier,
        check_subsets=args.subsets,
    )
    print(result)
    for counterexample in result.counterexamples:
        print(f"  counterexample: {counterexample}")
    return 0 if result.ok else 1


# ---------------------------------------------------------------------------
# simulate subcommand
# ---------------------------------------------------------------------------

_WORKLOADS = {
    "random": lambda args: random_dynamic_trace(
        args.operations, seed=args.seed, max_frontier=args.max_frontier
    ),
    "fixed": lambda args: fixed_replica_trace(
        args.replicas, args.operations, seed=args.seed
    ),
    "churn": lambda args: churn_trace(
        args.operations, seed=args.seed, target_frontier=args.max_frontier
    ),
    "partitioned": lambda args: partitioned_trace(
        initial_replicas=args.replicas,
        partitions=max(2, args.replicas // 2),
        phases=3,
        operations_per_phase=max(1, args.operations // 3),
        seed=args.seed,
    ),
}


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = _WORKLOADS[args.workload](args)
    if args.clock == "all":
        adapters = None  # the historical default mechanism set
    else:
        # One registered clock family, driven purely through the kernel's
        # CausalityClock protocol -- the same trace, any family, one flag.
        adapters = [kernel.KernelClockAdapter(args.clock)]
    runner = LockstepRunner(adapters, compare_every_step=not args.fast)
    reports, sizes = runner.run(trace)

    print(f"workload: {trace.name}")
    print(f"operations: {len(trace)}  max frontier width: {trace.max_frontier_width()}")
    print()
    table = SweepTable(["mechanism", "agreement", "missed", "false", "mean_bits", "peak_bits"])
    for name, report in sorted(reports.items()):
        table.add_row(
            mechanism=name,
            agreement=f"{report.agreement_rate:.1%}",
            missed=report.missed_conflicts,
            false=report.false_conflicts,
            mean_bits=sizes[name].final_mean_bits,
            peak_bits=sizes[name].peak_bits,
        )
    oracle = sizes.get("causal-history")
    if oracle is not None:
        table.add_row(
            mechanism="causal-history (oracle)",
            agreement="--",
            missed="--",
            false="--",
            mean_bits=oracle.final_mean_bits,
            peak_bits=oracle.peak_bits,
        )
    print(table.render(title="ordering agreement with causal histories and metadata size"))
    if args.diagram:
        print()
        print(render_trace(trace))
    return 0 if all(report.agreement_rate == 1.0 for report in reports.values()) else 1


# ---------------------------------------------------------------------------
# kernel subcommand
# ---------------------------------------------------------------------------


def _cmd_kernel(args: argparse.Namespace) -> int:
    action = args.kernel_command
    if action == "families":
        print(f"{'tag':>3}  {'family':<16} description")
        for name in kernel.families():
            entry = kernel.family(name)
            print(f"{entry.tag:>3}  {entry.name:<16} {entry.description}")
        return 0
    if action == "roundtrip":
        clock = kernel.make(args.clock).with_epoch(args.epoch)
        left, right = clock.fork()
        left = left.event()
        payload = left.to_bytes()
        info = kernel.envelope_info(payload)
        restored = kernel.from_bytes(payload)
        print(f"family:   {info.family} (format v{info.format_version})")
        print(f"epoch:    {info.epoch}")
        print(f"payload:  {info.payload_size} bytes "
              f"({left.encoded_size_bits()} payload bits)")
        print(f"envelope: {payload.hex()}")
        print(f"restored == original: {restored == left}")
        print(f"restored vs peer:     {restored.compare(right).value}")
        return 0 if restored == left else 1
    raise AssertionError(f"unhandled kernel action {action!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# sync-bench subcommand
# ---------------------------------------------------------------------------


def _cmd_sync_bench(args: argparse.Namespace) -> int:
    import random
    import time

    from .replication import (
        AntiEntropy,
        FullyConnectedNetwork,
        KernelTracker,
        MobileNode,
        WireSyncEngine,
    )

    if args.rounds < 1:
        print("error: --rounds must be at least 1", file=sys.stderr)
        return 1
    if args.warmup < 0 or args.replicas < 2 or args.keys < 1 or args.repeats < 1:
        print(
            "error: need --warmup >= 0, --replicas >= 2, --keys >= 1 "
            "and --repeats >= 1",
            file=sys.stderr,
        )
        return 1

    def timed_arm(family: str, batched: bool):
        """One timed measurement of one arm; returns (elapsed, stats)."""
        network = FullyConnectedNetwork()
        nodes = [
            MobileNode.first(
                "n0", network, tracker_factory=KernelTracker.factory(family)
            )
        ]
        for index in range(1, args.replicas):
            nodes.append(nodes[-1].spawn_peer(f"n{index}"))
        rng = random.Random(args.seed)
        for index in range(args.keys):
            rng.choice(nodes).write(f"key{index}", f"value{index}")
        engine = WireSyncEngine(batched=batched)
        gossip = AntiEntropy(nodes, rng=random.Random(args.seed + 1), engine=engine)
        for _ in range(args.warmup):
            gossip.run_round()
        shipped = engine.stamps_shipped
        messages, sent = engine.meter.snapshot()
        start = time.perf_counter()
        for _ in range(args.rounds):
            gossip.run_round()
        elapsed = time.perf_counter() - start
        stats = (
            (engine.stamps_shipped - shipped) / args.rounds,
            (engine.meter.messages - messages) / args.rounds,
            (engine.meter.bytes_sent - sent) / args.rounds,
        )
        return elapsed, stats

    families = kernel.families() if args.clock == "all" else [args.clock]
    print(
        f"steady-state anti-entropy: {args.replicas} replicas, "
        f"{args.keys} keys, {args.rounds} timed rounds per arm, "
        f"best of {args.repeats} interleaved repeats"
    )
    print(
        f"{'family':<16} {'mode':<13} {'rounds/s':>9} {'stamps/s':>10} "
        f"{'msgs/round':>11} {'bytes/round':>12} {'speedup':>8}"
    )
    worst = None
    for family in families:
        # Best-of-N with the arms interleaved (the perf_snapshot.py idiom):
        # a GC pause or scheduler stall lands on one repeat of one arm, not
        # on a whole arm, so the min-over-repeats ratio cannot flake a
        # --min-speedup gate the way a single perf_counter shot per arm can.
        best = {}
        for _ in range(args.repeats):
            for batched in (True, False):
                elapsed, stats = timed_arm(family, batched)
                if batched not in best or elapsed < best[batched][0]:
                    best[batched] = (elapsed, stats)
        rates = {
            batched: (args.rounds / elapsed if elapsed else float("inf"))
            for batched, (elapsed, _) in best.items()
        }
        for batched in (True, False):
            rate = rates[batched]
            stamps, msgs, nbytes = best[batched][1]
            mode = "batched" if batched else "per-envelope"
            print(
                f"{family:<16} {mode:<13} {rate:>9,.1f} "
                f"{rate * stamps:>10,.0f} "
                f"{msgs:>11,.1f} "
                f"{nbytes:>12,.0f} "
                + (f"{rates[True] / rates[False]:>8.1f}x" if not batched else f"{'':>8}")
            )
        speedup = rates[True] / rates[False]
        worst = speedup if worst is None else min(worst, speedup)
    if args.min_speedup is not None and worst is not None:
        if worst < args.min_speedup:
            print(
                f"FAIL: worst batched speedup {worst:.2f}x is below "
                f"--min-speedup {args.min_speedup:.2f}x"
            )
            return 1
        print(f"ok: worst batched speedup {worst:.2f}x")
    return 0


# ---------------------------------------------------------------------------
# serve-sim subcommand
# ---------------------------------------------------------------------------


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    import json as json_module

    from .replication import DegradationPlan, FaultPlan, FaultyTransport
    from .service import (
        AntiEntropyService,
        AsyncWireSyncEngine,
        LinkProfile,
        build_cluster,
    )

    nodes, key_names = build_cluster(
        args.replicas, keys=args.keys, family=args.clock, seed=args.seed
    )
    degradation = (
        DegradationPlan.grey(slow_fraction=args.degraded)
        if args.degraded > 0
        else None
    )
    transport = None
    if args.loss > 0 or degradation is not None:
        plan = FaultPlan(loss=args.loss, degradation=degradation)
        transport = FaultyTransport(nodes[0].network, plan=plan, seed=args.seed)
    engine = AsyncWireSyncEngine(transport=transport)
    link = LinkProfile(
        latency=args.latency, bandwidth=args.bandwidth, jitter=args.jitter
    )
    service = AntiEntropyService(
        nodes,
        engine=engine,
        shards=args.shards,
        link=link,
        seed=args.seed,
        lockstep=args.lockstep,
        health=args.health,
        hedge=args.hedge,
    )
    quiet = args.json
    if not quiet:
        mode = "lockstep" if args.lockstep else "overlap"
        extras = ""
        if args.health:
            extras += ", health on" + (" + hedging" if args.hedge else "")
        if degradation is not None:
            extras += f", {args.degraded:.0%} nodes grey-degraded"
        print(
            f"serve-sim: {args.replicas:,} replicas x {args.keys} keys "
            f"({args.clock}), {args.shards} shard(s), {mode} mode, "
            f"loss={args.loss:.2f}, latency={args.latency * 1e3:.1f}ms{extras}"
        )
        print(
            f"{'round':>5} {'exchanges':>9} {'skipped':>7} {'messages':>9} "
            f"{'bytes':>12} {'virtual s':>10} {'converged':>9}"
        )

    def show(metrics) -> None:
        print(
            f"{metrics.number:>5} {metrics.exchanges:>9,} {metrics.skipped:>7,} "
            f"{metrics.messages:>9,} {metrics.bytes_sent:>12,} "
            f"{metrics.virtual_duration:>10.4f} {str(metrics.converged):>9}"
        )

    report = service.run(
        max_rounds=args.max_rounds, on_round=None if quiet else show
    )
    if args.json:
        print(json_module.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if report.converged_after is not None else 1
    rounds_p = report.round_duration_percentiles()
    session_p = report.session_latency_percentiles()
    print(
        f"total: {report.total_messages:,} messages, {report.total_bytes:,} bytes "
        f"({report.bytes_per_key_per_replica(len(key_names)):.1f} B/key/replica), "
        f"{report.virtual_seconds:.3f} virtual seconds"
    )
    print(
        f"round duration p50/p90/p99: {rounds_p[0.5]:.4f}/{rounds_p[0.9]:.4f}/"
        f"{rounds_p[0.99]:.4f}s; transfer-leg p50/p90/p99: "
        f"{session_p[0.5] * 1e3:.2f}/{session_p[0.9] * 1e3:.2f}/"
        f"{session_p[0.99] * 1e3:.2f}ms"
    )
    if report.health is not None:
        health = report.health
        print(
            f"health: {health['timeouts']} timeout(s), "
            f"{health['breaker_opens']} breaker open(s), "
            f"{health['breaker_skips']} breaker skip(s), "
            f"{health['hedges']} hedge(s) ({health['hedge_wins']} won), "
            f"{health['redraws']} weighted redraw(s)"
        )
    if args.health_table and service.health is not None:
        _print_health_table(service)
    if report.converged_after is None:
        print(f"FAIL: not converged after {args.max_rounds} rounds")
        return 1
    print(f"converged after round {report.converged_after}")
    return 0


def _print_health_table(service) -> None:
    """The per-replica suspicion / circuit / deadline table."""
    rows = service.health.table()
    if not rows:
        print("health table: no peers observed")
        return
    print(
        f"{'replica':>10} {'samples':>7} {'mean ms':>9} {'deadline s':>10} "
        f"{'suspicion':>9} {'weight':>6} {'circuit':>9} {'timeouts':>8}"
    )
    for row in rows:
        node_id = service.daemons[row["peer"]].node.node_id
        print(
            f"{node_id:>10} {row['samples']:>7} "
            f"{row['mean_latency'] * 1e3:>9.2f} {row['deadline']:>10.3f} "
            f"{row['suspicion']:>9.2f} {row['weight']:>6.2f} "
            f"{row['circuit']:>9} {row['timeouts']:>8}"
        )


# ---------------------------------------------------------------------------
# contracts subcommand
# ---------------------------------------------------------------------------


def _cmd_contracts(args: argparse.Namespace) -> int:
    import dataclasses
    import random

    from .contracts import ContractChecker, ContractSpec
    from .replication import (
        AntiEntropy,
        FaultPlan,
        FaultyTransport,
        FullyConnectedNetwork,
        KernelTracker,
        MobileNode,
        NetworkMeter,
        SyncHistory,
        WireSyncEngine,
    )

    # The SNIPPETS.md Snippet-3 scenario: pipeline A exports a dataset,
    # pipeline B trains on it, and the only thing connecting them is
    # anti-entropy gossip over a chaotic fabric.  Wall-clock freshness
    # ("the export file is recent") cannot see whether B's copy causally
    # includes A's latest export -- the observes contract can.
    network = FullyConnectedNetwork()
    pipeline_a = MobileNode.first(
        "pipeline-a", network, tracker_factory=KernelTracker.factory(args.clock)
    )
    relay = pipeline_a.spawn_peer("relay")
    pipeline_b = relay.spawn_peer("pipeline-b")
    nodes = [pipeline_a, relay, pipeline_b]

    meter = NetworkMeter()
    history = SyncHistory(maxlen=args.history)
    checker = ContractChecker(
        [
            ContractSpec(
                name="train-sees-latest-export",
                kind="observes",
                source="export",
                target="train",
                key="dataset",
            )
        ],
        history=history,
    )
    checker.watch_writes(pipeline_a.store, "export")
    checker.bind("train", pipeline_b.store)

    print(f"contract: {checker.specs[0].describe()}")
    print(f"clock family: {args.clock}")

    # Act 1: export #1 propagates over a healthy fabric.
    warmup_engine = WireSyncEngine(meter=meter, history=history)
    gossip = AntiEntropy(nodes, rng=random.Random(args.seed), engine=warmup_engine)
    pipeline_a.write("dataset", "export #1")
    while not gossip.converged():
        gossip.run_round()
    print(f"healthy fabric: 'export #1' replicated in {len(gossip.reports)} round(s)")

    # Act 2: export #2 lands while the fabric chaos-fails.  The outage
    # window rides the transport's transfer counter, so the first
    # exchanges after the stale export are total losses; once the window
    # closes, the chaos plan's probabilistic faults (with retries) decide.
    plan = dataclasses.replace(
        FaultPlan.chaos(loss=args.loss), outages=((0, args.outage),)
    )
    transport = FaultyTransport(network, plan=plan, seed=args.seed)
    gossip.engine = WireSyncEngine(meter=meter, history=history, transport=transport)
    pipeline_a.write("dataset", "export #2")
    print(
        f"chaos fabric (loss={args.loss:.0%}, outage for the first "
        f"{args.outage} transfers): 'export #2' written at pipeline-a"
    )
    gossip.run(args.rounds)
    print(f"ran {args.rounds} gossip round(s); pipeline-b now runs 'train'")

    reports = checker.check("train", raise_on_violation=False)
    if reports:
        print()
        for report in reports:
            print(report.describe())
        print()
        print(
            "pipeline-b's copy of 'dataset' is causally behind pipeline-a's "
            "export; a wall-clock freshness check would have trained on it "
            "anyway.  (Re-run with more --rounds to let gossip outlive the "
            "outage.)"
        )
        return 2
    print(
        "contract holds: pipeline-b's 'dataset' causally includes "
        "pipeline-a's latest export"
    )
    return 0


# ---------------------------------------------------------------------------
# panasync subcommand
# ---------------------------------------------------------------------------


def _panasync_for(paths: Sequence[str]) -> Panasync:
    tool = Panasync()
    for path in paths:
        tool.add_repository(Path(path).name or str(path), Path(path))
    return tool


def _cmd_panasync(args: argparse.Namespace) -> int:
    tool = Panasync()
    tool.add_repository("repo", Path(args.repository))
    action = args.panasync_command
    if action == "create":
        content = Path(args.source).read_text(encoding="utf-8") if args.source else ""
        tool.create("repo", args.name, content)
        print(f"tracking {args.name}")
        return 0
    if action == "edit":
        content = Path(args.source).read_text(encoding="utf-8")
        tool.edit("repo", args.name, content)
        print(f"recorded an edit of {args.name}")
        return 0
    if action == "copy":
        tool.add_repository("target", Path(args.target_repository))
        tool.copy("repo", args.name, "target", args.target_name or args.name)
        print(f"copied {args.name} to {args.target_repository}")
        return 0
    if action == "compare":
        tool.add_repository("other", Path(args.other_repository))
        relation = tool.compare("repo", args.name, "other", args.other_name or args.name)
        print(relation.description)
        return 0 if not relation.diverged else 2
    if action == "merge":
        tool.add_repository("other", Path(args.other_repository))
        relation = tool.merge("repo", args.name, "other", args.other_name or args.name)
        print(f"merged ({relation.description})")
        return 0
    if action == "status":
        for line in tool.status():
            print(line.render())
        return 0
    raise AssertionError(f"unhandled panasync action {action!r}")  # pragma: no cover


def _cmd_store(args: argparse.Namespace) -> int:
    from .durability.inspect import format_report, inspect_path

    if args.store_command == "inspect":
        info = inspect_path(args.path)
        print(format_report(info))
        # Damage is described, not hidden -- and also signalled in the
        # exit code so scripts can gate on store health.
        return 0 if info.healthy else 2
    raise AssertionError(
        f"unhandled store action {args.store_command!r}"
    )  # pragma: no cover


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Version stamps: decentralized version vectors (ICDCS 2002 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    # stamp
    stamp = subparsers.add_parser("stamp", help="manipulate individual version stamps")
    stamp_sub = stamp.add_subparsers(dest="stamp_command", required=True)
    stamp_sub.add_parser("seed", help="print the seed stamp")
    for name in ("parse", "update", "fork", "normalize"):
        sub = stamp_sub.add_parser(name, help=f"{name} a stamp given in [u | i] notation")
        sub.add_argument("stamp", help="stamp text, e.g. '[1 | 01+1]'")
    join = stamp_sub.add_parser("join", help="join two stamps")
    join.add_argument("first")
    join.add_argument("second")
    join.add_argument("--no-reduce", action="store_true", help="skip the Section 6 simplification")
    compare = stamp_sub.add_parser("compare", help="compare two stamps")
    compare.add_argument("first")
    compare.add_argument("second")
    stamp.set_defaults(handler=_cmd_stamp)

    # figures
    figures = subparsers.add_parser("figures", help="regenerate the paper's figures")
    figures.set_defaults(handler=_cmd_figures)

    # check
    check = subparsers.add_parser("check", help="exhaustively model-check small executions")
    check.add_argument("--operations", type=int, default=4, help="depth bound (default 4)")
    check.add_argument("--max-frontier", type=int, default=3, help="frontier width cap (default 3)")
    check.add_argument("--subsets", action="store_true", help="also check the subset form of Prop. 5.1")
    check.set_defaults(handler=_cmd_check)

    # simulate
    simulate = subparsers.add_parser("simulate", help="replay a workload against every mechanism")
    simulate.add_argument("--workload", choices=sorted(_WORKLOADS), default="random")
    simulate.add_argument("--operations", type=int, default=100)
    simulate.add_argument("--replicas", type=int, default=4)
    simulate.add_argument("--max-frontier", type=int, default=8)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--clock",
        choices=["all"] + kernel.families(),
        default="all",
        help=(
            "replay against one registered clock family through the kernel "
            "CausalityClock protocol (default: the full mechanism set)"
        ),
    )
    simulate.add_argument("--fast", action="store_true", help="compare only at the end of the trace")
    simulate.add_argument("--diagram", action="store_true", help="print an ASCII diagram of the trace")
    simulate.set_defaults(handler=_cmd_simulate)

    # kernel
    kernel_parser = subparsers.add_parser(
        "kernel", help="inspect the causality kernel (clock families, envelopes)"
    )
    kernel_sub = kernel_parser.add_subparsers(dest="kernel_command", required=True)
    kernel_sub.add_parser("families", help="list the registered clock families")
    roundtrip = kernel_sub.add_parser(
        "roundtrip", help="fork/event a seed clock and round-trip it through the envelope"
    )
    roundtrip.add_argument("--clock", choices=kernel.families(), default="version-stamp")
    roundtrip.add_argument("--epoch", type=int, default=0, help="epoch tag to stamp on the clock")
    kernel_parser.set_defaults(handler=_cmd_kernel)

    # sync-bench
    sync_bench = subparsers.add_parser(
        "sync-bench",
        help="measure batched vs per-envelope anti-entropy sync throughput",
    )
    sync_bench.add_argument(
        "--clock", default="all",
        choices=["all"] + kernel.families(),
        help="clock family to benchmark (default: all registered families)",
    )
    sync_bench.add_argument(
        "--replicas", type=int, default=16, help="population size (default: 16)"
    )
    sync_bench.add_argument(
        "--keys", type=int, default=24, help="replicated keys (default: 24)"
    )
    sync_bench.add_argument(
        "--rounds", type=int, default=30, help="timed gossip rounds per arm (default: 30)"
    )
    sync_bench.add_argument(
        "--warmup", type=int, default=6,
        help="untimed rounds to reach the steady state (default: 6)",
    )
    sync_bench.add_argument("--seed", type=int, default=0, help="workload seed")
    sync_bench.add_argument(
        "--repeats", type=int, default=3,
        help="interleaved timing repeats per arm; the best (minimum) elapsed "
        "time of each arm is what the speedup gate compares (default: 3)",
    )
    sync_bench.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero when the worst batched speedup falls below this",
    )
    sync_bench.set_defaults(handler=_cmd_sync_bench)

    # serve-sim
    serve_sim = subparsers.add_parser(
        "serve-sim",
        help="drive the async anti-entropy service at datacenter scale on virtual time",
    )
    serve_sim.add_argument(
        "--replicas", type=int, default=10_000,
        help="simulated replica population (default: 10,000)",
    )
    serve_sim.add_argument(
        "--keys", type=int, default=4, help="replicated keys (default: 4)"
    )
    serve_sim.add_argument(
        "--clock", default="version-stamp", choices=kernel.families(),
        help="clock family (default: version-stamp)",
    )
    serve_sim.add_argument(
        "--shards", type=int, default=4,
        help="key-range shards syncing independently (default: 4)",
    )
    serve_sim.add_argument(
        "--loss", type=float, default=0.0,
        help="message loss probability on the simulated fabric (default: 0)",
    )
    serve_sim.add_argument(
        "--latency", type=float, default=0.001,
        help="one-way link latency in virtual seconds (default: 1ms)",
    )
    serve_sim.add_argument(
        "--bandwidth", type=float, default=1e9,
        help="link bandwidth in bytes per virtual second (default: 1e9)",
    )
    serve_sim.add_argument(
        "--jitter", type=float, default=0.1,
        help="fractional uniform latency jitter (default: 0.1)",
    )
    serve_sim.add_argument("--seed", type=int, default=0, help="simulation seed")
    serve_sim.add_argument(
        "--max-rounds", type=int, default=64,
        help="gossip-round budget before declaring failure (default: 64)",
    )
    serve_sim.add_argument(
        "--lockstep", action="store_true",
        help="serialize sessions in schedule order (the sync-equivalent mode)",
    )
    serve_sim.add_argument(
        "--health", action="store_true",
        help="enable the grey-failure health layer (accrual detection, "
        "adaptive deadlines, circuit breakers, weighted peer draw)",
    )
    serve_sim.add_argument(
        "--hedge", action="store_true",
        help="with --health: launch a backup session against the healthiest "
        "other peer when a primary session times out",
    )
    serve_sim.add_argument(
        "--degraded", type=float, default=0.0,
        help="fraction of replicas grey-degraded 10-100x (slow, stuck, "
        "flapping); implies a fault transport (default: 0)",
    )
    serve_sim.add_argument(
        "--health-table", action="store_true",
        help="print the per-replica suspicion/circuit/deadline table after the run",
    )
    serve_sim.add_argument(
        "--json", action="store_true",
        help="emit the full service report (health counters included) as JSON",
    )
    serve_sim.set_defaults(handler=_cmd_serve_sim)

    # contracts
    contracts = subparsers.add_parser(
        "contracts",
        help="declare and enforce causal ordering contracts between pipelines",
    )
    contracts_sub = contracts.add_subparsers(dest="contracts_command", required=True)
    demo = contracts_sub.add_parser(
        "demo",
        help="the stale-export scenario: pipeline B trains on pipeline A's "
        "dataset export under injected faults; exits 2 with a provenance-"
        "traced violation report when the contract is broken",
    )
    demo.add_argument(
        "--clock",
        default="version-stamp",
        choices=kernel.families(),
        help="clock family tracking the dataset key (default: version-stamp)",
    )
    demo.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="chaos gossip rounds between the stale export and the train "
        "step (default: 3 -- inside the outage, so the contract trips; "
        "try 12 to let the export propagate)",
    )
    demo.add_argument(
        "--loss",
        type=float,
        default=0.1,
        help="chaos plan loss rate after the outage window (default: 0.1)",
    )
    demo.add_argument(
        "--outage",
        type=int,
        default=50,
        help="scheduled total-loss window, in transfer attempts after the "
        "stale export (default: 50)",
    )
    demo.add_argument(
        "--history",
        type=int,
        default=256,
        help="sync-history ring buffer size backing provenance (default: 256)",
    )
    demo.add_argument("--seed", type=int, default=0, help="fault/schedule seed")
    contracts.set_defaults(handler=_cmd_contracts)

    # panasync
    panasync = subparsers.add_parser("panasync", help="track dependencies among file copies")
    panasync.add_argument("--repository", required=True, help="path of the copy repository")
    panasync_sub = panasync.add_subparsers(dest="panasync_command", required=True)
    create = panasync_sub.add_parser("create", help="start tracking a file")
    create.add_argument("name")
    create.add_argument("--source", help="file whose content seeds the copy")
    edit = panasync_sub.add_parser("edit", help="record an edit from a source file")
    edit.add_argument("name")
    edit.add_argument("source")
    copy = panasync_sub.add_parser("copy", help="duplicate a copy into another repository")
    copy.add_argument("name")
    copy.add_argument("target_repository")
    copy.add_argument("--target-name")
    compare_files = panasync_sub.add_parser("compare", help="compare two copies")
    compare_files.add_argument("name")
    compare_files.add_argument("other_repository")
    compare_files.add_argument("--other-name")
    merge_files = panasync_sub.add_parser("merge", help="merge two copies")
    merge_files.add_argument("name")
    merge_files.add_argument("other_repository")
    merge_files.add_argument("--other-name")
    panasync_sub.add_parser("status", help="list tracked copies")
    panasync.set_defaults(handler=_cmd_panasync)

    # store
    store = subparsers.add_parser(
        "store", help="work with durable store logs and snapshots"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    inspect_cmd = store_sub.add_parser(
        "inspect",
        help="header-only dump of a durable store (families, epochs, record "
        "counts, CRC status) without decoding any payload",
    )
    inspect_cmd.add_argument(
        "path", help="store directory (file backend) or SQLite database file"
    )
    store.set_defaults(handler=_cmd_store)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except Exception as error:  # noqa: BLE001 - the CLI boundary reports, not raises
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
