"""Plain-text experiment reporting.

Each benchmark regenerates one of the paper's figures or claims and wants to
print a small, self-describing block: what the paper shows, what we measured,
and whether the reproduction holds.  :class:`ExperimentReport` collects those
rows; :func:`render_reports` turns a collection of them into the text that
also feeds EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = ["ExperimentRow", "ExperimentReport", "render_reports"]


@dataclass(frozen=True)
class ExperimentRow:
    """One paper-vs-measured comparison line."""

    quantity: str
    paper: str
    measured: str
    matches: bool

    def render(self) -> str:
        status = "OK " if self.matches else "DIFF"
        return f"  [{status}] {self.quantity}: paper={self.paper} measured={self.measured}"


@dataclass
class ExperimentReport:
    """All the rows of one experiment (one figure or one claim)."""

    experiment_id: str
    title: str
    rows: List[ExperimentRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, quantity: str, paper: object, measured: object, *, matches: Optional[bool] = None) -> None:
        """Add a comparison row; equality of the rendered values by default."""
        paper_text = str(paper)
        measured_text = str(measured)
        if matches is None:
            matches = paper_text == measured_text
        self.rows.append(ExperimentRow(quantity, paper_text, measured_text, matches))

    def note(self, text: str) -> None:
        """Attach a free-form note (context, caveats, parameters)."""
        self.notes.append(text)

    @property
    def ok(self) -> bool:
        """True when every row matches."""
        return all(row.matches for row in self.rows)

    def render(self) -> str:
        """A readable multi-line rendering of the experiment."""
        status = "REPRODUCED" if self.ok else "MISMATCH"
        lines = [f"{self.experiment_id}: {self.title} [{status}]"]
        lines.extend(row.render() for row in self.rows)
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def render_reports(reports: Iterable[ExperimentReport]) -> str:
    """Render several experiment reports separated by blank lines."""
    return "\n\n".join(report.render() for report in reports)
