"""Analysis utilities: figure reconstructions, diagrams, size sweeps and reporting."""

from .diagrams import render_trace, trace_timeline
from .figures import (
    FIGURE1_EXPECTED,
    FIGURE4_EXPECTED,
    Figure1Result,
    Figure3Result,
    Figure4Result,
    figure1_version_vectors,
    figure2_frontiers,
    figure2_trace,
    figure3_encoding,
    figure4_stamps,
)
from .reporting import ExperimentReport, ExperimentRow, render_reports
from .sizes import churn_sweep, measure_trace_sizes, replica_count_sweep

__all__ = [
    "render_trace",
    "trace_timeline",
    "FIGURE1_EXPECTED",
    "FIGURE4_EXPECTED",
    "Figure1Result",
    "Figure3Result",
    "Figure4Result",
    "figure1_version_vectors",
    "figure2_frontiers",
    "figure2_trace",
    "figure3_encoding",
    "figure4_stamps",
    "ExperimentReport",
    "ExperimentRow",
    "render_reports",
    "measure_trace_sizes",
    "replica_count_sweep",
    "churn_sweep",
]
