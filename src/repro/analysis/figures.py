"""Programmatic reconstructions of the paper's figures.

The paper's evaluation consists of worked figures; each function here rebuilds
one of them with the library and returns the concrete values so tests and
benchmarks can assert them against the values printed in the paper.

* **Figure 1** -- three replicas A, B, C tracked with classic version
  vectors: A updates, B synchronizes with A, C updates, B synchronizes with
  C, A updates again.
* **Figure 2** -- the dynamic fork/join evolution (elements ``a1 ... g1``)
  and the two possible frontiers containing ``c2``.
* **Figure 3** -- the encoding of a fixed three-replica version-vector system
  under fork-and-join dynamics; we check that stamps and version vectors
  induce the same order on every synchronization frontier.
* **Figure 4** -- the version stamps of the Figure 2 evolution, including the
  non-reduced join result ``[1 | 00+01+1]``, the intermediate simplification
  ``[1 | 0+1]`` and the normal form ``[ε | ε]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..causal.configuration import CausalConfiguration
from ..core.frontier import Frontier
from ..core.order import Ordering
from ..core.reduction import normalize, rewrite_once
from ..core.stamp import VersionStamp
from ..sim.trace import Operation, Trace
from ..vv.version_vector import VersionVector

__all__ = [
    "Figure1Result",
    "figure1_version_vectors",
    "FIGURE1_EXPECTED",
    "figure2_trace",
    "figure2_frontiers",
    "Figure3Result",
    "figure3_encoding",
    "Figure4Result",
    "figure4_stamps",
    "FIGURE4_EXPECTED",
]

# ---------------------------------------------------------------------------
# Figure 1 -- version vectors among three replicas
# ---------------------------------------------------------------------------

#: Replica order used to render vectors as fixed-length sequences.
_FIGURE1_REPLICAS: Tuple[str, str, str] = ("A", "B", "C")

#: The vector sequences printed in Figure 1, per replica, in order.
FIGURE1_EXPECTED: Dict[str, List[Tuple[int, int, int]]] = {
    "A": [(0, 0, 0), (1, 0, 0), (1, 0, 0), (2, 0, 0)],
    "B": [(0, 0, 0), (1, 0, 0), (1, 0, 1)],
    "C": [(0, 0, 0), (0, 0, 1), (1, 0, 1)],
}


@dataclass
class Figure1Result:
    """The reconstructed Figure 1: per-replica version-vector timelines."""

    replicas: Tuple[str, ...]
    timelines: Dict[str, List[Tuple[int, ...]]]
    final_orderings: Dict[Tuple[str, str], Ordering]

    def matches_paper(self) -> bool:
        """True when every timeline equals the figure's printed vectors."""
        return self.timelines == FIGURE1_EXPECTED


def figure1_version_vectors() -> Figure1Result:
    """Re-run the Figure 1 scenario with classic version vectors."""
    vectors: Dict[str, VersionVector] = {
        replica: VersionVector() for replica in _FIGURE1_REPLICAS
    }
    timelines: Dict[str, List[Tuple[int, ...]]] = {
        replica: [vectors[replica].as_list(_FIGURE1_REPLICAS)]
        for replica in _FIGURE1_REPLICAS
    }

    def record(replica: str) -> None:
        timelines[replica].append(vectors[replica].as_list(_FIGURE1_REPLICAS))

    # A updates.
    vectors["A"] = vectors["A"].increment("A")
    record("A")
    # B synchronizes with A (pulls A's knowledge).
    vectors["B"] = vectors["B"].merge(vectors["A"])
    record("B")
    record("A")
    # C updates.
    vectors["C"] = vectors["C"].increment("C")
    record("C")
    # B synchronizes with C; C receives the merged knowledge as well.
    merged = vectors["B"].merge(vectors["C"])
    vectors["B"] = merged
    vectors["C"] = merged
    record("B")
    record("C")
    # A updates again.
    vectors["A"] = vectors["A"].increment("A")
    record("A")

    final_orderings = {
        (x, y): vectors[x].compare(vectors[y])
        for x in _FIGURE1_REPLICAS
        for y in _FIGURE1_REPLICAS
        if x != y
    }
    return Figure1Result(
        replicas=_FIGURE1_REPLICAS,
        timelines=timelines,
        final_orderings=final_orderings,
    )


# ---------------------------------------------------------------------------
# Figure 2 -- fork/join evolution and frontiers
# ---------------------------------------------------------------------------


def figure2_trace() -> Trace:
    """The Figure 2 evolution as an operation trace.

    Element names follow the figure: ``a1`` updates into ``a2``; ``a2`` forks
    into ``b1`` and ``c1``; ``c1`` updates twice (``c2``, ``c3``); ``b1``
    forks into ``d1`` and ``e1``; ``e1`` joins ``c3`` into ``f1``; ``d1``
    joins ``f1`` into ``g1``.
    """
    return Trace(
        seed="a1",
        operations=(
            Operation.update("a1", "a2"),
            Operation.fork("a2", "b1", "c1"),
            Operation.update("c1", "c2"),
            Operation.fork("b1", "d1", "e1"),
            Operation.update("c2", "c3"),
            Operation.join("e1", "c3", "f1"),
            Operation.join("d1", "f1", "g1"),
        ),
        name="figure-2",
    )


def figure2_frontiers() -> Dict[str, List[str]]:
    """The two frontiers containing ``c2`` discussed in Section 1.2.

    The single-dotted frontier occurs when ``c1`` becomes ``c2`` before
    ``b1`` bifurcates; the double-dotted one when the bifurcation happens
    first.
    """
    return {
        "single-dotted": ["b1", "c2"],
        "double-dotted": ["d1", "e1", "c2"],
    }


# ---------------------------------------------------------------------------
# Figure 3 -- encoding a fixed replica set under fork-and-join dynamics
# ---------------------------------------------------------------------------


@dataclass
class Figure3Result:
    """Result of encoding the fixed three-replica run with stamps."""

    #: Orderings reported by version vectors at each checkpoint.
    vector_orderings: List[Dict[Tuple[str, str], Ordering]]
    #: Orderings reported by version stamps at the same checkpoints.
    stamp_orderings: List[Dict[Tuple[str, str], Ordering]]
    #: Orderings reported by the causal-history oracle at the checkpoints.
    causal_orderings: List[Dict[Tuple[str, str], Ordering]]

    def all_agree(self) -> bool:
        """True when stamps and vectors agree with the oracle at every checkpoint."""
        return (
            self.vector_orderings == self.causal_orderings
            and self.stamp_orderings == self.causal_orderings
        )


def figure3_encoding() -> Figure3Result:
    """Run the Figure 1 scenario under fork-and-join dynamics.

    The fixed replicas ``a``, ``b``, ``c`` of the figure are encoded as
    frontier elements; every synchronization is a join followed by a fork
    (Figure 3's "extra elements" are the transient join results).  At each of
    the four checkpoints (after every update/synchronization batch) the
    pairwise ordering of the three replicas is computed with version vectors,
    with version stamps and with causal histories; the figure's point is that
    the dynamics encode the same information, so all three must agree.
    """
    replicas = ("a", "b", "c")

    # Version-vector world (fixed identifiers).
    vectors = {replica: VersionVector() for replica in replicas}
    # Stamp world (fork/join dynamics), plus the causal-history oracle.
    frontier = Frontier.initial("a")
    frontier.fork("a", "a", "tmp")
    frontier.fork("tmp", "b", "c")
    causal = CausalConfiguration.initial("a")
    causal.fork("a", "a", "tmp")
    causal.fork("tmp", "b", "c")

    vector_orderings: List[Dict[Tuple[str, str], Ordering]] = []
    stamp_orderings: List[Dict[Tuple[str, str], Ordering]] = []
    causal_orderings: List[Dict[Tuple[str, str], Ordering]] = []

    def checkpoint() -> None:
        vector_orderings.append(
            {
                (x, y): vectors[x].compare(vectors[y])
                for x in replicas
                for y in replicas
                if x != y
            }
        )
        stamp_orderings.append(
            {
                (x, y): frontier.compare(x, y)
                for x in replicas
                for y in replicas
                if x != y
            }
        )
        causal_orderings.append(
            {
                (x, y): causal.compare(x, y)
                for x in replicas
                for y in replicas
                if x != y
            }
        )

    def update(replica: str) -> None:
        vectors[replica] = vectors[replica].increment(replica)
        frontier.update(replica, replica)
        causal.update(replica, replica)

    def synchronize(first: str, second: str) -> None:
        merged = vectors[first].merge(vectors[second])
        vectors[first] = merged
        vectors[second] = merged
        frontier.sync(first, second, first, second)
        causal.sync(first, second, first, second)

    update("a")
    checkpoint()
    synchronize("a", "b")
    checkpoint()
    update("c")
    checkpoint()
    synchronize("b", "c")
    checkpoint()
    update("a")
    checkpoint()

    return Figure3Result(
        vector_orderings=vector_orderings,
        stamp_orderings=stamp_orderings,
        causal_orderings=causal_orderings,
    )


# ---------------------------------------------------------------------------
# Figure 4 -- the version stamps of the Figure 2 evolution
# ---------------------------------------------------------------------------

#: The stamp values printed in Figure 4, in the paper's ``[update | id]``
#: notation, for every element of the Figure 2 evolution.  The final join is
#: shown in the figure both before simplification and after one rewriting
#: step; its normal form collapses to the seed stamp.
FIGURE4_EXPECTED: Dict[str, str] = {
    "a1": "[ε | ε]",
    "a2": "[ε | ε]",
    "b1": "[ε | 0]",
    "c1": "[ε | 1]",
    "c2": "[1 | 1]",
    "c3": "[1 | 1]",
    "d1": "[ε | 00]",
    "e1": "[ε | 01]",
    "f1": "[1 | 01+1]",
    "g1_unreduced": "[1 | 00+01+1]",
    "g1_one_step": "[1 | 0+1]",
    "g1_normal_form": "[ε | ε]",
}


@dataclass
class Figure4Result:
    """The reconstructed Figure 4 stamps, keyed like :data:`FIGURE4_EXPECTED`."""

    stamps: Dict[str, str]

    def matches_paper(self) -> bool:
        """True when every reconstructed stamp equals the printed one."""
        return all(
            self.stamps.get(key) == expected
            for key, expected in FIGURE4_EXPECTED.items()
        )

    def mismatches(self) -> Dict[str, Tuple[str, str]]:
        """Mapping of key -> (expected, actual) for any differing stamp."""
        return {
            key: (expected, self.stamps.get(key, "<missing>"))
            for key, expected in FIGURE4_EXPECTED.items()
            if self.stamps.get(key) != expected
        }


def figure4_stamps() -> Figure4Result:
    """Replay the Figure 2 evolution with non-reducing stamps and record
    every stamp the figure prints, plus the simplification chain of the final
    join."""
    observed: Dict[str, str] = {}
    frontier = Frontier.initial("a1", reducing=False)
    observed["a1"] = str(frontier.stamp_of("a1"))

    frontier.update("a1", "a2")
    observed["a2"] = str(frontier.stamp_of("a2"))

    frontier.fork("a2", "b1", "c1")
    observed["b1"] = str(frontier.stamp_of("b1"))
    observed["c1"] = str(frontier.stamp_of("c1"))

    frontier.update("c1", "c2")
    observed["c2"] = str(frontier.stamp_of("c2"))

    frontier.fork("b1", "d1", "e1")
    observed["d1"] = str(frontier.stamp_of("d1"))
    observed["e1"] = str(frontier.stamp_of("e1"))

    frontier.update("c2", "c3")
    observed["c3"] = str(frontier.stamp_of("c3"))

    frontier.join("e1", "c3", "f1")
    observed["f1"] = str(frontier.stamp_of("f1"))

    frontier.join("d1", "f1", "g1")
    unreduced = frontier.stamp_of("g1")
    observed["g1_unreduced"] = str(unreduced)

    one_step = rewrite_once(unreduced.update_component, unreduced.identity)
    if one_step is not None:
        observed["g1_one_step"] = str(
            VersionStamp(one_step[0], one_step[1], reducing=False, _validate=False)
        )
    normal_update, normal_identity, _steps = normalize(
        unreduced.update_component, unreduced.identity
    )
    observed["g1_normal_form"] = str(
        VersionStamp(normal_update, normal_identity, reducing=False, _validate=False)
    )
    return Figure4Result(stamps=observed)
