"""Size models and sweeps for the space experiments.

The paper motivates version stamps partly on space: identities adapt to the
frontier, so stamps should stay small where identifier-based mechanisms keep
growing (every replica ever created leaves an entry behind).  This module
packages the measurements the SPACE and ABL-ITC experiments report:

* :func:`measure_trace_sizes` -- replay one trace with the lockstep runner
  and return per-mechanism size statistics.
* :func:`replica_count_sweep` -- metadata size as a function of the number of
  replicas in a closed system.
* :func:`churn_sweep` -- metadata size as a function of replica churn
  (creation + retirement), the regime where the difference matters most.

All results come back as :class:`~repro.sim.metrics.SweepTable` objects so
the benchmarks can both assert on them and print them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..sim.metrics import SweepTable, summarize
from ..sim.runner import LockstepRunner, SizeSample, default_adapters
from ..sim.trace import Trace
from ..sim.workload import churn_trace, fixed_replica_trace

__all__ = [
    "measure_trace_sizes",
    "replica_count_sweep",
    "churn_sweep",
]


def measure_trace_sizes(
    trace: Trace,
    *,
    include_plausible: bool = False,
    compare_every_step: bool = False,
) -> Dict[str, SizeSample]:
    """Replay ``trace`` and return the per-mechanism size samples.

    Correctness cross-checking is a by-product (the runner raises if a
    mechanism's frontier diverges); only the size samples are returned.
    """
    runner = LockstepRunner(
        default_adapters(include_plausible=include_plausible),
        compare_every_step=compare_every_step,
        check_invariants=False,
    )
    _reports, sizes = runner.run(trace)
    return sizes


def replica_count_sweep(
    replica_counts: Sequence[int],
    *,
    operations: int = 60,
    seed: int = 0,
) -> SweepTable:
    """Mean metadata size per element as the replica count grows."""
    table = SweepTable(
        [
            "replicas",
            "stamps_bits",
            "stamps_nonreducing_bits",
            "dynamic_vv_bits",
            "itc_bits",
        ]
    )
    for replicas in replica_counts:
        trace = fixed_replica_trace(replicas, operations, seed=seed)
        sizes = measure_trace_sizes(trace)
        table.add_row(
            replicas=replicas,
            stamps_bits=sizes["version-stamps"].final_mean_bits,
            stamps_nonreducing_bits=sizes["version-stamps-nonreducing"].final_mean_bits,
            dynamic_vv_bits=sizes["dynamic-version-vectors"].final_mean_bits,
            itc_bits=sizes["interval-tree-clocks"].final_mean_bits,
        )
    return table


def churn_sweep(
    operation_counts: Sequence[int],
    *,
    target_frontier: int = 8,
    seed: int = 0,
) -> SweepTable:
    """Mean metadata size per element as fork/join churn accumulates."""
    table = SweepTable(
        [
            "operations",
            "stamps_bits",
            "stamps_nonreducing_bits",
            "dynamic_vv_bits",
            "itc_bits",
        ]
    )
    for operations in operation_counts:
        trace = churn_trace(operations, target_frontier=target_frontier, seed=seed)
        sizes = measure_trace_sizes(trace)
        table.add_row(
            operations=operations,
            stamps_bits=sizes["version-stamps"].final_mean_bits,
            stamps_nonreducing_bits=sizes["version-stamps-nonreducing"].final_mean_bits,
            dynamic_vv_bits=sizes["dynamic-version-vectors"].final_mean_bits,
            itc_bits=sizes["interval-tree-clocks"].final_mean_bits,
        )
    return table
