"""Size models and sweeps for the space experiments.

The paper motivates version stamps partly on space: identities adapt to the
frontier, so stamps should stay small where identifier-based mechanisms keep
growing (every replica ever created leaves an entry behind).  This module
packages the measurements the SPACE and ABL-ITC experiments report:

* :func:`measure_trace_sizes` -- replay one trace with the lockstep runner
  and return per-mechanism size statistics.
* :func:`kernel_family_matrix` -- agreement + size summary of every
  registered clock family on one trace (the cross-family comparison the
  CLI's ``simulate --clock`` flag exposes one row of).
* :func:`replica_count_sweep` -- metadata size as a function of the number of
  replicas in a closed system.
* :func:`churn_sweep` -- metadata size as a function of replica churn
  (creation + retirement), the regime where the difference matters most.
* :func:`reroot_growth_curve` -- bounded-vs-unbounded growth on the
  sibling-starved sync chain: re-rooted stamps against raw reducing stamps,
  whose size compounds exponentially (the raw arm is advanced only until it
  blows past a cap, then censored).

Measurement convention (the one yardstick)
------------------------------------------
Every curve in this module measures clocks through the kernel protocol's
``encoded_size_bits()``: the **exact bit length of the family's compact
binary wire payload** (the envelope payload of :mod:`repro.kernel.envelope`,
excluding the fixed 12-byte envelope framing shared by all families).
Concretely that means the trie bit stream for version stamps, the
gamma-coded tree stream for ITC, fixed UUID-sized (128-bit) identifier
slots plus 32-bit counters for dynamic version vectors, and one 64-bit
identity per event for the causal-history oracle.  Earlier revisions mixed
per-adapter cost models (e.g. ``CausalAdapter.size_in_bits`` counting
64 bits per event while stamps reported raw, un-encoded string lengths),
which made curves for different families incommensurable; routing everything
through the protocol removes that drift.

One documented exception: the optional ``include_plausible`` row of
:func:`measure_trace_sizes` is not a registered kernel family (plausible
clocks are a lossy contrast baseline with no wire codec here), so its
sizes come from the mechanism's abstract fixed-width model
(``entries × 32`` counter bits) -- by construction constant, which is the
only property the plausible-clock comparisons rely on.  Do not read its
absolute bits against the kernel rows.

All results come back as :class:`~repro.sim.metrics.SweepTable` objects so
the benchmarks can both assert on them and print them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.frontier import Frontier
from ..kernel.adapters import (
    KernelClockAdapter,
    MechanismAdapter,
    PlausibleAdapter,
)
from ..kernel.registry import families as registered_families
from ..sim.metrics import SweepTable
from ..sim.runner import LockstepRunner, SizeSample
from ..sim.trace import Trace, apply_operation
from ..sim.workload import churn_trace, fixed_replica_trace, sync_chain_trace

__all__ = [
    "measure_trace_sizes",
    "kernel_family_matrix",
    "replica_count_sweep",
    "churn_sweep",
    "reroot_growth_curve",
]


def _protocol_adapters() -> List[MechanismAdapter]:
    """The standard measurement set, driven purely by the kernel protocol.

    Adapter names keep the historical mechanism labels so downstream tables
    and tests stay stable; the *measurements* all flow through
    ``CausalityClock.encoded_size_bits()``.
    """
    return [
        KernelClockAdapter("version-stamp", name="version-stamps"),
        KernelClockAdapter(
            "version-stamp", name="version-stamps-nonreducing", reducing=False
        ),
        KernelClockAdapter("vv-dynamic", name="dynamic-version-vectors"),
        KernelClockAdapter("itc", name="interval-tree-clocks"),
    ]


def measure_trace_sizes(
    trace: Trace,
    *,
    include_plausible: bool = False,
    compare_every_step: bool = False,
) -> Dict[str, SizeSample]:
    """Replay ``trace`` and return the per-mechanism size samples.

    Correctness cross-checking is a by-product (the runner raises if a
    mechanism's frontier diverges); only the size samples are returned.
    The oracle's sample appears under ``"causal-history"``.
    """
    adapters = _protocol_adapters()
    if include_plausible:
        adapters.append(PlausibleAdapter())
    runner = LockstepRunner(
        adapters,
        compare_every_step=compare_every_step,
        check_invariants=False,
    )
    _reports, sizes = runner.run(trace)
    return sizes


def kernel_family_matrix(trace: Trace) -> SweepTable:
    """Cross-family comparison matrix: every registered family on one trace.

    One lockstep replay per row would skew the oracle's shared event arena,
    so all families ride in a single replay; each row reports the family's
    ordering agreement with the causal-history oracle and its size summary
    under the common ``encoded_size_bits()`` yardstick.
    """
    adapters = [KernelClockAdapter(name) for name in registered_families()]
    runner = LockstepRunner(adapters, compare_every_step=True, check_invariants=False)
    reports, sizes = runner.run(trace)
    table = SweepTable(
        ["family", "agreement", "missed", "false", "mean_bits", "peak_bits"]
    )
    for adapter in adapters:
        report = reports[adapter.name]
        sample = sizes[adapter.name]
        table.add_row(
            family=adapter.family,
            agreement=report.agreement_rate,
            missed=report.missed_conflicts,
            false=report.false_conflicts,
            mean_bits=sample.final_mean_bits,
            peak_bits=sample.peak_bits,
        )
    return table


def replica_count_sweep(
    replica_counts: Sequence[int],
    *,
    operations: int = 60,
    seed: int = 0,
) -> SweepTable:
    """Mean metadata size per element as the replica count grows."""
    table = SweepTable(
        [
            "replicas",
            "stamps_bits",
            "stamps_nonreducing_bits",
            "dynamic_vv_bits",
            "itc_bits",
        ]
    )
    for replicas in replica_counts:
        trace = fixed_replica_trace(replicas, operations, seed=seed)
        sizes = measure_trace_sizes(trace)
        table.add_row(
            replicas=replicas,
            stamps_bits=sizes["version-stamps"].final_mean_bits,
            stamps_nonreducing_bits=sizes["version-stamps-nonreducing"].final_mean_bits,
            dynamic_vv_bits=sizes["dynamic-version-vectors"].final_mean_bits,
            itc_bits=sizes["interval-tree-clocks"].final_mean_bits,
        )
    return table


def churn_sweep(
    operation_counts: Sequence[int],
    *,
    target_frontier: int = 8,
    seed: int = 0,
) -> SweepTable:
    """Mean metadata size per element as fork/join churn accumulates."""
    table = SweepTable(
        [
            "operations",
            "stamps_bits",
            "stamps_nonreducing_bits",
            "dynamic_vv_bits",
            "itc_bits",
        ]
    )
    for operations in operation_counts:
        trace = churn_trace(operations, target_frontier=target_frontier, seed=seed)
        sizes = measure_trace_sizes(trace)
        table.add_row(
            operations=operations,
            stamps_bits=sizes["version-stamps"].final_mean_bits,
            stamps_nonreducing_bits=sizes["version-stamps-nonreducing"].final_mean_bits,
            dynamic_vv_bits=sizes["dynamic-version-vectors"].final_mean_bits,
            itc_bits=sizes["interval-tree-clocks"].final_mean_bits,
        )
    return table


def reroot_growth_curve(
    operations: int,
    *,
    replicas: int = 4,
    threshold: int = 256,
    sample_every: int = 50,
    raw_cap_bits: int = 1 << 20,
    seed: int = 0,
) -> SweepTable:
    """Bounded-vs-unbounded stamp growth on a sibling-starved sync chain.

    Replays one :func:`~repro.sim.workload.sync_chain_trace` through two
    frontiers -- re-rooting at ``threshold`` encoded bits, and the paper's
    plain Section 6 behaviour -- sampling the largest live stamp every
    ``sample_every`` steps.  The raw arm compounds exponentially, so it is
    advanced only until its largest stamp passes ``raw_cap_bits``; later
    rows leave ``raw_bits`` empty (the curve is censored, not flat).  The
    columns also carry the cumulative re-root count so the curve shows the
    trigger cadence.  (This curve intentionally stays on
    :class:`~repro.core.frontier.Frontier` -- it measures the version-stamp
    GC trigger, which keys on the same encoded size the kernel yardstick
    reports.)
    """
    trace = sync_chain_trace(operations, replicas=replicas, seed=seed)
    rerooted = Frontier.initial(trace.seed, reroot_threshold=threshold)
    raw: Optional[Frontier] = Frontier.initial(trace.seed)
    table = SweepTable(["step", "rerooted_bits", "raw_bits", "reroots"])
    for index, operation in enumerate(trace.operations):
        apply_operation(rerooted, operation)
        if raw is not None:
            apply_operation(raw, operation)
            if raw.max_stamp_bits() > raw_cap_bits:
                raw = None
        step = index + 1
        if step % sample_every == 0 or step == len(trace):
            table.add_row(
                step=step,
                rerooted_bits=rerooted.max_stamp_bits(),
                raw_bits=raw.max_stamp_bits() if raw is not None else None,
                reroots=rerooted.reroots_performed,
            )
    return table
