"""ASCII rendering of system evolutions, in the spirit of the paper's figures.

The paper communicates executions as diagrams: one horizontal line per
lineage, ``-Æ->`` arrows for updates, splits for forks and merges for joins,
with either version vectors (Figure 1) or version stamps (Figure 4) annotated
on every element.  :func:`render_trace` produces a textual approximation of
those diagrams for any :class:`~repro.sim.trace.Trace`, optionally annotating
every element with its version stamp, which makes traces self-explanatory in
examples, docs and debugging sessions.

The layout is deliberately simple: one row per element label, one column per
trace step; an element occupies the columns during which it is alive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.frontier import Frontier
from ..sim.trace import OpKind, Operation, Trace

__all__ = ["render_trace", "trace_timeline"]


def trace_timeline(trace: Trace) -> List[Tuple[str, int, int, Optional[str]]]:
    """Compute, for every element of the trace, its lifetime and origin.

    Returns a list of ``(label, born_step, died_step, origin_label)`` tuples
    where steps index into ``trace.operations`` (birth step 0 is the seed;
    ``died_step`` is ``len(trace)`` for elements still alive at the end).
    """
    born: Dict[str, int] = {trace.seed: 0}
    died: Dict[str, int] = {}
    origin: Dict[str, Optional[str]] = {trace.seed: None}
    for index, operation in enumerate(trace.operations, start=1):
        for label in operation.consumed():
            died.setdefault(label, index)
        for label in operation.results:
            born.setdefault(label, index)
            origin.setdefault(label, operation.source)
    lifetimes = []
    for label, start in born.items():
        end = died.get(label, len(trace.operations) + 1)
        lifetimes.append((label, start, end, origin[label]))
    return lifetimes


def _annotations(trace: Trace, annotate: str) -> Dict[str, str]:
    """Compute the per-element annotation text (stamps or nothing)."""
    if annotate == "none":
        return {}
    reducing = annotate == "stamps"
    frontier = Frontier.initial(trace.seed, reducing=reducing)
    annotations = {trace.seed: str(frontier.stamp_of(trace.seed))}
    for operation in trace.operations:
        if operation.kind == OpKind.UPDATE:
            frontier.update(operation.source, operation.results[0])
        elif operation.kind == OpKind.FORK:
            frontier.fork(operation.source, *operation.results)
        elif operation.kind == OpKind.JOIN:
            frontier.join(operation.source, operation.other, operation.results[0])
        else:
            frontier.sync(operation.source, operation.other, *operation.results)
        for label in operation.results:
            annotations[label] = str(frontier.stamp_of(label))
    return annotations


def render_trace(trace: Trace, *, annotate: str = "stamps", width: int = 100) -> str:
    """Render ``trace`` as an ASCII diagram.

    Parameters
    ----------
    trace:
        The trace to render.
    annotate:
        ``"stamps"`` (reducing stamps, the default), ``"stamps-nonreducing"``
        or ``"none"``.
    width:
        Maximum line width; longer annotation columns are truncated.
    """
    if annotate not in ("stamps", "stamps-nonreducing", "none"):
        raise ValueError(f"unknown annotation mode {annotate!r}")
    annotations = _annotations(trace, annotate)

    lines: List[str] = []
    title = trace.name or "trace"
    lines.append(f"{title}  ({len(trace.operations)} operations)")
    lines.append("=" * min(width, max(len(lines[0]), 20)))

    lines.append(f"step  0: seed element {trace.seed}"
                 + (f"  {annotations.get(trace.seed, '')}" if annotations else ""))
    for index, operation in enumerate(trace.operations, start=1):
        if operation.kind == OpKind.UPDATE:
            arrow = f"{operation.source} --*--> {operation.results[0]}"
        elif operation.kind == OpKind.FORK:
            arrow = (
                f"{operation.source} --<fork>--> "
                f"{operation.results[0]} / {operation.results[1]}"
            )
        elif operation.kind == OpKind.JOIN:
            arrow = (
                f"{operation.source} + {operation.other} --<join>--> "
                f"{operation.results[0]}"
            )
        else:
            arrow = (
                f"{operation.source} ~ {operation.other} --<sync>--> "
                f"{operation.results[0]} / {operation.results[1]}"
            )
        annotation = ""
        if annotations:
            parts = [
                f"{label}={annotations[label]}"
                for label in operation.results
                if label in annotations
            ]
            annotation = "   " + ", ".join(parts)
        line = f"step {index:2d}: {arrow}{annotation}"
        if len(line) > width:
            line = line[: width - 3] + "..."
        lines.append(line)

    alive = sorted(trace.final_frontier())
    closing = f"final frontier: {', '.join(alive)}"
    if annotations:
        closing += "   [" + "; ".join(
            f"{label}={annotations.get(label, '?')}" for label in alive
        ) + "]"
    if len(closing) > width:
        closing = closing[: width - 3] + "..."
    lines.append(closing)
    return "\n".join(lines)
