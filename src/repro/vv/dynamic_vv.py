"""Dynamic version vectors (Ratner/Reiher/Popek-style baseline).

Classic version vectors assume a fixed replica set.  The *dynamic* variant
lets replicas be created and retired at run time: a new replica obtains a
fresh globally unique identifier and an entry in the vector; a retired
replica's entry lingers until the system can prove every live replica has
seen its updates and garbage-collect it.

This module implements that baseline with the identifier requirement made
explicit: creation goes through an :class:`~repro.vv.id_source.IdSource`,
which can refuse under partition (the precise failure mode version stamps
eliminate).  The :class:`DynamicVVSystem` tracks live replicas so the
benchmarks can measure vector growth with and without retirement compaction.

The element-level API (:class:`DynamicVVElement`) mirrors the fork/join/update
calculus used by the rest of the library so the lockstep runner can drive it
from the same traces as version stamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.errors import ReplicationError
from ..core.order import Ordering
from .id_source import IdAllocationError, IdSource, CentralIdSource
from .version_vector import VersionVector

__all__ = ["DynamicVVElement", "DynamicVVSystem"]


@dataclass(frozen=True)
class DynamicVVElement:
    """A replica version in the dynamic version-vector baseline.

    Attributes
    ----------
    replica_id:
        The globally unique identifier of the replica holding this version.
    vector:
        The version vector recording the updates this version reflects.
    """

    replica_id: str
    vector: VersionVector

    def update(self) -> "DynamicVVElement":
        """Record a local update (increment our own entry)."""
        return DynamicVVElement(self.replica_id, self.vector.increment(self.replica_id))

    def event(self) -> "DynamicVVElement":
        """Kernel-protocol alias for :meth:`update` (fork/event/join naming)."""
        return self.update()

    def merge_from(self, other: "DynamicVVElement") -> "DynamicVVElement":
        """Absorb the knowledge of ``other`` without changing identity."""
        return DynamicVVElement(self.replica_id, self.vector.merge(other.vector))

    def compare(self, other: "DynamicVVElement") -> Ordering:
        """Three-way comparison of the two versions' update knowledge."""
        return self.vector.compare(other.vector)

    def size_in_bits(self, *, id_bits: int = 64, counter_bits: int = 32) -> int:
        """Encoded size of the vector plus the replica's own identifier."""
        return id_bits + self.vector.size_in_bits(
            id_bits=id_bits, counter_bits=counter_bits
        )


class DynamicVVSystem:
    """A dynamic replication system tracked with dynamic version vectors.

    The system exposes the same ``update`` / ``fork`` / ``join`` vocabulary as
    :class:`~repro.core.frontier.Frontier`, but every fork must obtain a new
    replica identifier from the configured :class:`IdSource` -- under a
    partition with a central source this *fails*, which is exactly the
    limitation motivating version stamps.

    Parameters
    ----------
    id_source:
        Identifier allocator.  Defaults to a central authority.
    prune_on_join:
        When ``True`` the entry of the replica retired by a join is removed
        once no live replica is missing its updates (a simplified form of
        Ratner-style compaction).
    """

    def __init__(
        self,
        id_source: Optional[IdSource] = None,
        *,
        prune_on_join: bool = False,
    ) -> None:
        self._id_source = id_source if id_source is not None else CentralIdSource()
        self._elements: Dict[str, DynamicVVElement] = {}
        self._retired: Set[str] = set()
        self._prune_on_join = prune_on_join
        self._failed_forks = 0

    # -- constructors -------------------------------------------------

    @classmethod
    def initial(
        cls,
        label: str = "a",
        *,
        id_source: Optional[IdSource] = None,
        prune_on_join: bool = False,
        connected: bool = True,
    ) -> "DynamicVVSystem":
        """A system with a single replica holding an all-zero vector."""
        system = cls(id_source, prune_on_join=prune_on_join)
        replica_id = system._id_source.allocate(connected=connected)
        system._elements[label] = DynamicVVElement(replica_id, VersionVector())
        return system

    # -- inspection ------------------------------------------------------

    def labels(self) -> List[str]:
        """Labels of the live elements."""
        return list(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, label: object) -> bool:
        return label in self._elements

    def element(self, label: str) -> DynamicVVElement:
        """The element registered under ``label``."""
        try:
            return self._elements[label]
        except KeyError:
            raise ReplicationError(
                f"element {label!r} is not part of the system "
                f"(elements: {sorted(self._elements)})"
            ) from None

    def vector_of(self, label: str) -> VersionVector:
        """The version vector of ``label``."""
        return self.element(label).vector

    @property
    def failed_forks(self) -> int:
        """Forks refused because no identifier could be allocated."""
        return self._failed_forks

    @property
    def retired_ids(self) -> Set[str]:
        """Identifiers of replicas retired by joins so far."""
        return set(self._retired)

    def identifier_count(self) -> int:
        """Distinct replica identifiers mentioned by any live vector."""
        mentioned: Set[str] = set()
        for element in self._elements.values():
            mentioned.add(element.replica_id)
            mentioned.update(element.vector.counters)
        return len(mentioned)

    def total_size_in_bits(self, *, id_bits: int = 64, counter_bits: int = 32) -> int:
        """Sum of the encoded sizes of every live element."""
        return sum(
            element.size_in_bits(id_bits=id_bits, counter_bits=counter_bits)
            for element in self._elements.values()
        )

    # -- transformations ----------------------------------------------------

    def _fresh_label(self, base: str) -> str:
        candidate = base
        while candidate in self._elements:
            candidate += "'"
        return candidate

    def update(self, label: str, new_label: Optional[str] = None) -> str:
        """Record an update on ``label``."""
        element = self.element(label)
        target = new_label if new_label is not None else self._fresh_label(label + "'")
        if target != label and target in self._elements:
            raise ReplicationError(f"element {target!r} already exists")
        del self._elements[label]
        self._elements[target] = element.update()
        return target

    def fork(
        self,
        label: str,
        left_label: Optional[str] = None,
        right_label: Optional[str] = None,
        *,
        connected: bool = True,
    ) -> Tuple[str, str]:
        """Create a new replica from ``label``.

        The original keeps its identifier; the new replica needs a fresh one
        from the identifier source.  Raises :class:`IdAllocationError` when
        the source is unreachable (``connected=False`` with a central source).
        """
        element = self.element(label)
        left = left_label if left_label is not None else label
        right = (
            right_label if right_label is not None else self._fresh_label(label + "+")
        )
        if left == right:
            raise ReplicationError("fork children must have distinct labels")
        try:
            new_id = self._id_source.allocate(connected=connected)
        except IdAllocationError:
            self._failed_forks += 1
            raise
        del self._elements[label]
        for target in (left, right):
            if target in self._elements:
                raise ReplicationError(f"element {target!r} already exists")
        self._elements[left] = element
        self._elements[right] = DynamicVVElement(new_id, element.vector)
        return left, right

    def join(self, first: str, second: str, new_label: Optional[str] = None) -> str:
        """Merge two replicas; the second replica's identity retires."""
        if first == second:
            raise ReplicationError("cannot join an element with itself")
        first_element = self.element(first)
        second_element = self.element(second)
        target = (
            new_label
            if new_label is not None
            else self._fresh_label(f"{first}{second}")
        )
        del self._elements[first]
        del self._elements[second]
        if target in self._elements:
            raise ReplicationError(f"element {target!r} already exists")
        merged = first_element.merge_from(second_element)
        self._elements[target] = merged
        self._retired.add(second_element.replica_id)
        self._id_source.release(second_element.replica_id)
        if self._prune_on_join:
            self._prune_retired()
        return target

    def sync(
        self,
        first: str,
        second: str,
        *,
        connected: bool = True,
    ) -> Tuple[str, str]:
        """Pairwise synchronization: both replicas end with merged knowledge.

        Unlike stamps (join followed by fork) the dynamic-VV baseline keeps
        both replica identities, so no allocation is needed here.
        """
        first_element = self.element(first)
        second_element = self.element(second)
        self._elements[first] = first_element.merge_from(second_element)
        self._elements[second] = second_element.merge_from(first_element)
        return first, second

    def _prune_retired(self) -> None:
        """Drop retired entries that every live replica already dominates."""
        if not self._retired:
            return
        live = list(self._elements.values())
        for retired_id in list(self._retired):
            counters = [element.vector.get(retired_id) for element in live]
            if not counters:
                continue
            maximum = max(counters)
            if all(counter == maximum for counter in counters):
                self._elements = {
                    label: DynamicVVElement(
                        element.replica_id, element.vector.without(retired_id)
                    )
                    for label, element in self._elements.items()
                }
                self._retired.discard(retired_id)

    # -- queries -----------------------------------------------------------------

    def compare(self, first: str, second: str) -> Ordering:
        """Three-way comparison of two live elements."""
        return self.element(first).compare(self.element(second))

    def ordering_matrix(self) -> Dict[Tuple[str, str], Ordering]:
        """All pairwise comparisons of the live elements."""
        labels = self.labels()
        matrix: Dict[Tuple[str, str], Ordering] = {}
        for x in labels:
            for y in labels:
                if x != y:
                    matrix[(x, y)] = self.compare(x, y)
        return matrix
