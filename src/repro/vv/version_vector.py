"""Classic version vectors (Parker et al. 1983).

A version vector maps replica identifiers to update counters.  Replica ``r``
increments its own entry on every local update; reconciliation takes the
entry-wise maximum.  Two versions are compared entry-wise: equality, strict
dominance either way, or mutual inconsistency (conflict).

This is the baseline the paper generalizes: it assumes a replica set that is
known (or at least centrally extensible) and globally unique identifiers.
The implementation supports both the *fixed* flavour (a closed set of
replicas known up front, as in Figure 1) and the open flavour used by the
dynamic baseline in :mod:`repro.vv.dynamic_vv`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from ..core.errors import ReplicationError
from ..core.order import Ordering, ordering_from_leq

__all__ = ["VersionVector"]


class VersionVector:
    """An immutable mapping from replica identifiers to update counters.

    Missing entries are treated as zero, so vectors over different replica
    sets can still be compared and merged -- this is what allows the dynamic
    baseline to add replicas over time.
    """

    __slots__ = ("_counters", "_hash")

    def __init__(self, counters: Optional[Mapping[str, int]] = None) -> None:
        cleaned: Dict[str, int] = {}
        for replica, counter in (counters or {}).items():
            if not isinstance(counter, int) or counter < 0:
                raise ReplicationError(
                    f"counter for replica {replica!r} must be a non-negative "
                    f"integer, got {counter!r}"
                )
            if counter > 0:
                cleaned[replica] = counter
        object.__setattr__(self, "_counters", dict(cleaned))
        object.__setattr__(
            self, "_hash", hash(("VersionVector", frozenset(cleaned.items())))
        )

    # -- constructors -------------------------------------------------

    @classmethod
    def zero(cls, replicas: Iterable[str] = ()) -> "VersionVector":
        """The all-zero vector (optionally naming the replica set up front)."""
        return cls({replica: 0 for replica in replicas})

    # -- protocol -------------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("VersionVector instances are immutable")

    @property
    def counters(self) -> Dict[str, int]:
        """A copy of the non-zero entries."""
        return dict(self._counters)

    def get(self, replica: str) -> int:
        """The counter of ``replica`` (zero when absent)."""
        return self._counters.get(replica, 0)

    def __getitem__(self, replica: str) -> int:
        return self.get(replica)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VersionVector):
            return self._counters == other._counters
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(
            f"{replica}: {counter}"
            for replica, counter in sorted(self._counters.items())
        )
        return f"VersionVector({{{body}}})"

    def as_list(self, replicas: Iterable[str]) -> Tuple[int, ...]:
        """Render against an explicit replica ordering (Figure 1 style)."""
        return tuple(self.get(replica) for replica in replicas)

    # -- evolution --------------------------------------------------------

    def increment(self, replica: str) -> "VersionVector":
        """Record a local update at ``replica``."""
        counters = dict(self._counters)
        counters[replica] = counters.get(replica, 0) + 1
        return VersionVector(counters)

    def merge(self, other: "VersionVector") -> "VersionVector":
        """Entry-wise maximum: the combined knowledge of both versions."""
        counters = dict(self._counters)
        for replica, counter in other._counters.items():
            if counter > counters.get(replica, 0):
                counters[replica] = counter
        return VersionVector(counters)

    def __or__(self, other: "VersionVector") -> "VersionVector":
        if not isinstance(other, VersionVector):
            return NotImplemented
        return self.merge(other)

    def without(self, replica: str) -> "VersionVector":
        """Drop one replica's entry (used by retirement protocols)."""
        counters = dict(self._counters)
        counters.pop(replica, None)
        return VersionVector(counters)

    # -- comparison --------------------------------------------------------

    def leq(self, other: "VersionVector") -> bool:
        """Entry-wise less-or-equal: ``other`` has seen every update we have."""
        return all(
            counter <= other.get(replica)
            for replica, counter in self._counters.items()
        )

    def __le__(self, other: "VersionVector") -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        return self.leq(other)

    def __lt__(self, other: "VersionVector") -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        return self.leq(other) and self != other

    def compare(self, other: "VersionVector") -> Ordering:
        """Three-way comparison (dominance / equality / conflict)."""
        return ordering_from_leq(self, other, VersionVector.leq)

    def dominates(self, other: "VersionVector") -> bool:
        """True when this vector has seen every update known to ``other``."""
        return other.leq(self)

    def concurrent(self, other: "VersionVector") -> bool:
        """True when the two versions are in conflict."""
        return self.compare(other) is Ordering.CONCURRENT

    # -- size accounting -----------------------------------------------------

    def total_updates(self) -> int:
        """Sum of all counters (the number of updates reflected)."""
        return sum(self._counters.values())

    def size_in_bits(self, *, id_bits: int = 64, counter_bits: int = 32) -> int:
        """Encoded size under an explicit cost model.

        Version vectors must carry globally unique replica identifiers
        (``id_bits`` each, 64 by default to reflect uuid-like identifiers
        shortened by a directory) and one counter per replica.  The paper's
        size comparison against version stamps is sensitive to this model, so
        the benchmarks expose both knobs.
        """
        entries = len(self._counters)
        return entries * (id_bits + counter_bits)
