"""Baseline causality mechanisms the paper compares against or builds upon.

* :class:`~repro.vv.version_vector.VersionVector` -- classic version vectors
  (Parker et al.), the mechanism of Figure 1.
* :class:`~repro.vv.vector_clock.VectorClock` -- Fidge/Mattern vector clocks
  for whole-computation event ordering.
* :class:`~repro.vv.dynamic_vv.DynamicVVSystem` -- dynamic version-vector
  maintenance (Ratner et al.): replica creation/retirement with explicit
  identifier allocation.
* :class:`~repro.vv.plausible.PlausibleClock` -- plausible clocks
  (Torres-Rojas & Ahamad): constant size, approximate ordering.
* :mod:`~repro.vv.id_source` -- the identifier allocation strategies these
  baselines depend on (and version stamps do not).
"""

from .dynamic_vv import DynamicVVElement, DynamicVVSystem
from .lamport import LamportClock, LamportProcess
from .id_source import (
    CentralIdSource,
    IdAllocationError,
    IdSource,
    PreassignedIdSource,
    RandomIdSource,
)
from .plausible import PlausibleClock
from .vector_clock import ClockedProcess, VectorClock
from .version_vector import VersionVector

__all__ = [
    "VersionVector",
    "VectorClock",
    "LamportClock",
    "LamportProcess",
    "ClockedProcess",
    "DynamicVVElement",
    "DynamicVVSystem",
    "PlausibleClock",
    "IdSource",
    "IdAllocationError",
    "CentralIdSource",
    "RandomIdSource",
    "PreassignedIdSource",
]
