"""Replica-identifier allocation strategies for the baseline mechanisms.

Version vectors and vector clocks need globally unique replica identifiers
(the mapping ``I → ℕ`` of Section 1).  The paper's central observation is
that producing such identifiers requires either connectivity to an authority
or probabilistic uniqueness -- both of which it rejects for partitioned,
mobile operation.  To make this requirement explicit (and measurable in the
benchmarks) the baselines in :mod:`repro.vv` obtain their identifiers from an
:class:`IdSource`, of which we provide three flavours:

* :class:`CentralIdSource` -- a counter behind a single authority; allocation
  fails while the requesting node is partitioned away from it.
* :class:`RandomIdSource` -- fixed-width random identifiers; allocation always
  succeeds but uniqueness is only probabilistic (collisions are possible and
  are reported so experiments can count them).
* :class:`PreassignedIdSource` -- identifiers are fixed up front, modelling a
  classic closed system with a known replica set.

Version stamps use none of these: their identities are created autonomously
by ``fork``.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Set

from ..core.errors import ReplicationError

__all__ = [
    "IdAllocationError",
    "IdSource",
    "CentralIdSource",
    "RandomIdSource",
    "PreassignedIdSource",
]


class IdAllocationError(ReplicationError):
    """Raised when a replica identifier cannot be allocated."""


class IdSource:
    """Abstract interface of a replica-identifier allocator."""

    def allocate(self, *, connected: bool = True) -> str:
        """Return a new replica identifier.

        Parameters
        ----------
        connected:
            Whether the requesting node can currently reach the identifier
            authority.  Decentralized sources ignore the flag; the central
            source refuses to allocate when it is ``False``.
        """
        raise NotImplementedError

    def release(self, identifier: str) -> None:
        """Return an identifier to the source (used on replica retirement)."""
        # Most sources never reuse identifiers; releasing is a no-op.

    @property
    def requires_connectivity(self) -> bool:
        """Whether allocation can fail under partition."""
        return False

    @property
    def collisions(self) -> int:
        """Number of identifier collisions produced so far (0 if impossible)."""
        return 0


class CentralIdSource(IdSource):
    """A single authority handing out sequential identifiers.

    This models the "request a unique identifier from a server" option the
    paper mentions for well-connected environments; it is exactly what
    partitioned operation rules out.
    """

    def __init__(self, prefix: str = "r") -> None:
        self._prefix = prefix
        self._next = 0
        self._refused = 0

    def allocate(self, *, connected: bool = True) -> str:
        if not connected:
            self._refused += 1
            raise IdAllocationError(
                "the identifier authority is unreachable under the current partition"
            )
        identifier = f"{self._prefix}{self._next}"
        self._next += 1
        return identifier

    @property
    def requires_connectivity(self) -> bool:
        return True

    @property
    def refused(self) -> int:
        """How many allocations were refused because of partitions."""
        return self._refused


class RandomIdSource(IdSource):
    """Fixed-width random identifiers with only probabilistic uniqueness.

    All randomness comes from one seeded RNG -- the repo-wide determinism
    invariant: a source built with the same ``rng`` (or the same ``seed``)
    allocates the identical identifier sequence, so experiments that count
    collisions replay exactly.  Pass ``rng`` to share a generator with the
    rest of a scenario, or ``seed`` for a private one; the default is the
    fixed ``seed=0``, never an OS-seeded generator.
    """

    def __init__(
        self,
        bits: int = 32,
        *,
        rng: Optional[random.Random] = None,
        seed: int = 0,
    ) -> None:
        if bits <= 0:
            raise ValueError("identifier width must be positive")
        if rng is not None and seed != 0:
            raise ValueError("pass either rng or seed, not both")
        self._bits = bits
        self._rng = rng if rng is not None else random.Random(seed)
        self._seen: Set[str] = set()
        self._collisions = 0

    def allocate(self, *, connected: bool = True) -> str:
        value = self._rng.getrandbits(self._bits)
        identifier = f"x{value:0{(self._bits + 3) // 4}x}"
        if identifier in self._seen:
            self._collisions += 1
        self._seen.add(identifier)
        return identifier

    @property
    def collisions(self) -> int:
        return self._collisions

    @property
    def bits(self) -> int:
        """Identifier width in bits (relevant for size accounting)."""
        return self._bits


class PreassignedIdSource(IdSource):
    """A fixed pool of identifiers known in advance (the classic closed system)."""

    def __init__(self, identifiers: Iterable[str]) -> None:
        self._available: List[str] = list(identifiers)
        self._initial = list(self._available)
        if len(set(self._available)) != len(self._available):
            raise ValueError("preassigned identifiers must be distinct")

    def allocate(self, *, connected: bool = True) -> str:
        if not self._available:
            raise IdAllocationError(
                "the preassigned identifier pool is exhausted; a closed system "
                "cannot create replicas beyond its fixed set"
            )
        return self._available.pop(0)

    def release(self, identifier: str) -> None:
        if identifier in self._initial and identifier not in self._available:
            self._available.append(identifier)

    @property
    def remaining(self) -> int:
        """How many identifiers are still available."""
        return len(self._available)
