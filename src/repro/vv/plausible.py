"""Plausible clocks (Torres-Rojas & Ahamad 1999) -- a constant-size baseline.

The paper cites plausible clocks as the known answer to the *size* problem of
vector clocks: a fixed number ``R`` of entries is shared by all processes
(each process hashes to an entry).  Plausible clocks never contradict
causality -- if ``a`` happened before ``b`` they order ``a`` before ``b`` --
but they may order events that are actually concurrent.  In the update
tracking setting this means *missed conflicts*, which is why they are not a
substitute for version vectors or stamps; the benchmarks quantify exactly
that: constant size, non-zero conflict-miss rate.

The implementation is the "R-entries vector" (REV) strategy from the original
paper, driven by the same fork/join/update vocabulary as the other
mechanisms.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.errors import ReplicationError
from ..core.order import Ordering, ordering_from_leq

__all__ = ["PlausibleClock"]


def _slot_for(replica_id: str, entries: int) -> int:
    """Deterministically map a replica identifier to one of ``entries`` slots."""
    # A small stable hash (Python's hash() is salted per process).
    value = 0
    for char in replica_id:
        value = (value * 131 + ord(char)) % (2**31 - 1)
    return value % entries


class PlausibleClock:
    """A fixed-width plausible clock (REV strategy).

    Parameters
    ----------
    entries:
        Number of counter slots shared by every replica.
    counters:
        Initial slot values (defaults to all-zero).
    replica_id:
        Identifier of the replica holding this clock; it determines which
        slot local updates increment.
    """

    __slots__ = ("_entries", "_counters", "_replica_id")

    def __init__(
        self,
        entries: int,
        replica_id: str,
        counters: Optional[Tuple[int, ...]] = None,
    ) -> None:
        if entries <= 0:
            raise ReplicationError("a plausible clock needs at least one entry")
        if counters is None:
            counters = (0,) * entries
        if len(counters) != entries:
            raise ReplicationError(
                f"expected {entries} counters, got {len(counters)}"
            )
        object.__setattr__(self, "_entries", entries)
        object.__setattr__(self, "_counters", tuple(counters))
        object.__setattr__(self, "_replica_id", replica_id)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PlausibleClock instances are immutable")

    # -- accessors --------------------------------------------------------

    @property
    def entries(self) -> int:
        """The fixed number of slots."""
        return self._entries

    @property
    def counters(self) -> Tuple[int, ...]:
        """The slot values."""
        return self._counters

    @property
    def replica_id(self) -> str:
        """The identifier of the replica holding this clock."""
        return self._replica_id

    @property
    def slot(self) -> int:
        """The slot local updates of this replica increment."""
        return _slot_for(self._replica_id, self._entries)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PlausibleClock):
            return (
                self._entries == other._entries
                and self._counters == other._counters
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("PlausibleClock", self._entries, self._counters))

    def __repr__(self) -> str:
        return (
            f"PlausibleClock(entries={self._entries}, replica_id={self._replica_id!r}, "
            f"counters={self._counters})"
        )

    # -- evolution --------------------------------------------------------

    def update(self) -> "PlausibleClock":
        """Record a local update (increment this replica's slot)."""
        counters = list(self._counters)
        counters[self.slot] += 1
        return PlausibleClock(self._entries, self._replica_id, tuple(counters))

    def event(self) -> "PlausibleClock":
        """Kernel-protocol alias for :meth:`update` (fork/event/join naming)."""
        return self.update()

    def merge(self, other: "PlausibleClock") -> "PlausibleClock":
        """Slot-wise maximum (combined knowledge)."""
        if self._entries != other._entries:
            raise ReplicationError(
                "cannot merge plausible clocks with different widths"
            )
        counters = tuple(
            max(mine, theirs)
            for mine, theirs in zip(self._counters, other._counters)
        )
        return PlausibleClock(self._entries, self._replica_id, counters)

    def for_replica(self, replica_id: str) -> "PlausibleClock":
        """The same knowledge viewed from another replica identity."""
        return PlausibleClock(self._entries, replica_id, self._counters)

    # -- comparison --------------------------------------------------------

    def leq(self, other: "PlausibleClock") -> bool:
        """Slot-wise less-or-equal (the plausible, possibly lossy order)."""
        if self._entries != other._entries:
            raise ReplicationError(
                "cannot compare plausible clocks with different widths"
            )
        return all(
            mine <= theirs for mine, theirs in zip(self._counters, other._counters)
        )

    def compare(self, other: "PlausibleClock") -> Ordering:
        """Three-way comparison; may report an ordering for concurrent versions."""
        return ordering_from_leq(self, other, PlausibleClock.leq)

    # -- size accounting -----------------------------------------------------

    def size_in_bits(self, *, counter_bits: int = 32) -> int:
        """Encoded size: a fixed number of counters, independent of replicas."""
        return self._entries * counter_bits
