"""Lamport scalar clocks (Lamport 1978), the simplest causality baseline.

The paper roots version vectors and vector clocks in Lamport's happened-before
relation.  Scalar Lamport clocks are the cheapest mechanism of the family:
one integer per process, ticked on every event and maximized on receipt.
They are *consistent* with causality (``a → b  ⇒  L(a) < L(b)``) but cannot
detect concurrency -- two concurrent events simply get arbitrarily ordered
numbers.  We include them to make that contrast executable: the benchmarks
show scalar clocks produce orderings for pairs the causal-history oracle
reports as concurrent, which is exactly why update tracking needs version
vectors or version stamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.errors import ReplicationError
from ..core.order import Ordering

__all__ = ["LamportClock", "LamportProcess"]


@dataclass(frozen=True)
class LamportClock:
    """An immutable scalar Lamport clock value.

    The ``process`` field is used only to break ties deterministically when a
    total order is requested (the classic ``(counter, process)`` pair); it
    plays no role in the causality-consistency property.
    """

    counter: int = 0
    process: str = ""

    def tick(self) -> "LamportClock":
        """Advance the clock for a local event."""
        return LamportClock(self.counter + 1, self.process)

    def merge(self, other: "LamportClock") -> "LamportClock":
        """Receive a message stamped with ``other``: max then tick."""
        return LamportClock(max(self.counter, other.counter) + 1, self.process)

    def happened_before_or_equal(self, other: "LamportClock") -> bool:
        """The only sound conclusion a scalar clock supports: ``<=`` on counters."""
        return self.counter <= other.counter

    def compare(self, other: "LamportClock") -> Ordering:
        """Three-way comparison.

        Scalar clocks cannot represent concurrency: the result is never
        :attr:`Ordering.CONCURRENT`, so conflicts are silently ordered.  This
        is the documented weakness the benchmarks quantify.
        """
        if self.counter == other.counter and self.process == other.process:
            return Ordering.EQUAL
        if (self.counter, self.process) < (other.counter, other.process):
            return Ordering.BEFORE
        return Ordering.AFTER

    def total_order_key(self) -> Tuple[int, str]:
        """The classic ``(counter, process)`` total-order key."""
        return (self.counter, self.process)

    def size_in_bits(self, *, counter_bits: int = 64) -> int:
        """Encoded size: one counter, independent of the number of replicas."""
        return counter_bits


class LamportProcess:
    """A process holding a scalar clock, for the message-passing simulations."""

    def __init__(self, identifier: str) -> None:
        if not identifier:
            raise ReplicationError("a process needs a non-empty identifier")
        self.identifier = identifier
        self.clock = LamportClock(0, identifier)

    def local_event(self) -> LamportClock:
        """Record an internal event; returns the new clock value."""
        self.clock = self.clock.tick()
        return self.clock

    def send_event(self) -> LamportClock:
        """Record a send; returns the clock value to attach to the message."""
        return self.local_event()

    def receive_event(self, message_clock: LamportClock) -> LamportClock:
        """Record the receipt of a message stamped with ``message_clock``."""
        self.clock = self.clock.merge(message_clock)
        return self.clock

    def __repr__(self) -> str:
        return f"LamportProcess({self.identifier!r}, {self.clock!r})"
