"""Fidge/Mattern vector clocks for event ordering.

Section 1 of the paper contrasts the two roles of the ``I → ℕ`` structure:
*vector clocks* order every event of a distributed computation, while
*version vectors* only need to relate coexisting replicas.  We include a
vector-clock implementation both to make that contrast executable (the
benchmarks show vector clocks ordering non-frontier events that stamps
deliberately cannot relate) and as a substrate for the message-passing
simulation in :mod:`repro.replication`.

The implementation follows the standard rules: a process increments its own
entry on every local event and on every send; a receive merges the incoming
clock and then increments the local entry.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from ..core.errors import ReplicationError
from ..core.order import Ordering, ordering_from_leq
from .version_vector import VersionVector

__all__ = ["VectorClock", "ClockedProcess"]


class VectorClock(VersionVector):
    """A vector clock; structurally a version vector with event semantics.

    The comparison is the usual happened-before relation: ``a < b`` iff every
    entry of ``a`` is ``<=`` the corresponding entry of ``b`` and at least one
    is strictly smaller.
    """

    __slots__ = ()

    def tick(self, process: str) -> "VectorClock":
        """Advance the local component for an internal event."""
        return VectorClock(self.increment(process).counters)

    def send(self, process: str) -> "VectorClock":
        """Advance the local component and return the clock to attach."""
        return self.tick(process)

    def receive(self, process: str, message_clock: "VectorClock") -> "VectorClock":
        """Merge a received clock and advance the local component."""
        merged = self.merge(message_clock)
        return VectorClock(merged.increment(process).counters)

    def happened_before(self, other: "VectorClock") -> bool:
        """The strict happened-before relation."""
        return self.leq(other) and self != other

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither event happened before the other."""
        return self.compare(other) is Ordering.CONCURRENT


class ClockedProcess:
    """A process with an identity and a vector clock, for simulations.

    This tiny wrapper keeps the mutation pattern (tick on event, merge on
    receive) in one place so the replication substrate and the examples do
    not repeat it.
    """

    def __init__(self, identifier: str, clock: Optional[VectorClock] = None) -> None:
        if not identifier:
            raise ReplicationError("a process needs a non-empty identifier")
        self.identifier = identifier
        self.clock = clock if clock is not None else VectorClock()

    def local_event(self) -> VectorClock:
        """Record an internal event; returns the new clock."""
        self.clock = self.clock.tick(self.identifier)
        return self.clock

    def send_event(self) -> VectorClock:
        """Record a send; returns the clock to piggyback on the message."""
        self.clock = self.clock.send(self.identifier)
        return self.clock

    def receive_event(self, message_clock: VectorClock) -> VectorClock:
        """Record a receive of a message carrying ``message_clock``."""
        self.clock = self.clock.receive(self.identifier, message_clock)
        return self.clock

    def __repr__(self) -> str:
        return f"ClockedProcess({self.identifier!r}, {self.clock!r})"
