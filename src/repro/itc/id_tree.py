"""Identity trees for Interval Tree Clocks.

Interval Tree Clocks (Almeida, Baquero & Fonte, 2008) are the authors' own
successor to version stamps and realize the "more compact forms" future work
of Section 7 of the paper we reproduce.  An ITC identity is a binary tree
describing which *interval* of the unit segment a replica owns:

* ``0`` -- owns nothing (an anonymous stamp),
* ``1`` -- owns the whole subinterval,
* ``(l, r)`` -- the left/right halves are described recursively.

The identity plays the same role as the version-stamp ``id`` component: it is
created autonomously by ``fork`` (splitting the owned interval) and collapsed
by ``join`` (summing intervals), with normalization merging adjacent halves,
the analogue of the Section 6 rewriting rule.

Identities are represented as plain nested structures (``0``, ``1`` or a
2-tuple) to keep the recursive algorithms readable; the functions here
validate, normalize, split and sum them.
"""

from __future__ import annotations

from typing import Tuple, Union

from ..core.errors import StampError

__all__ = [
    "IdTree",
    "validate_id",
    "normalize_id",
    "split_id",
    "sum_ids",
    "id_size_in_nodes",
    "is_leaf_id",
]

#: An identity tree: 0, 1 or a pair of identity trees.
IdTree = Union[int, Tuple["IdTree", "IdTree"]]


def is_leaf_id(identity: IdTree) -> bool:
    """True when the identity is one of the leaves ``0`` or ``1``."""
    return identity == 0 or identity == 1


def validate_id(identity: IdTree) -> None:
    """Raise :class:`StampError` unless ``identity`` is a well-formed id tree."""
    if identity == 0 or identity == 1:
        return
    if isinstance(identity, tuple) and len(identity) == 2:
        validate_id(identity[0])
        validate_id(identity[1])
        return
    raise StampError(f"malformed ITC identity: {identity!r}")


def normalize_id(identity: IdTree) -> IdTree:
    """Collapse ``(0, 0)`` to ``0`` and ``(1, 1)`` to ``1``, recursively."""
    if is_leaf_id(identity):
        return identity
    left = normalize_id(identity[0])
    right = normalize_id(identity[1])
    if left == 0 and right == 0:
        return 0
    if left == 1 and right == 1:
        return 1
    return (left, right)


def split_id(identity: IdTree) -> Tuple[IdTree, IdTree]:
    """Split an identity into two disjoint identities covering the same interval.

    This is the ITC analogue of the version-stamp ``fork`` on ids: the two
    results are non-overlapping, their sum is the original, and splitting an
    anonymous identity (``0``) yields two anonymous identities.
    """
    if identity == 0:
        return 0, 0
    if identity == 1:
        return (1, 0), (0, 1)
    left, right = identity
    if left == 0:
        first, second = split_id(right)
        return (0, first), (0, second)
    if right == 0:
        first, second = split_id(left)
        return (first, 0), (second, 0)
    return (left, 0), (0, right)


def sum_ids(first: IdTree, second: IdTree) -> IdTree:
    """Combine two disjoint identities (the ITC analogue of joining ids).

    Raises
    ------
    StampError
        If the identities overlap (both own some common subinterval), which
        can only happen through misuse (e.g. joining a stamp with itself).
    """
    if first == 0:
        return second
    if second == 0:
        return first
    if first == 1 or second == 1:
        raise StampError(
            f"cannot sum overlapping ITC identities {first!r} and {second!r}"
        )
    left = sum_ids(first[0], second[0])
    right = sum_ids(first[1], second[1])
    return normalize_id((left, right))


def id_size_in_nodes(identity: IdTree) -> int:
    """Number of tree nodes, the natural size measure for ITC identities."""
    if is_leaf_id(identity):
        return 1
    return 1 + id_size_in_nodes(identity[0]) + id_size_in_nodes(identity[1])
