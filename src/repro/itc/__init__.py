"""Interval Tree Clocks -- the paper's future-work extension, implemented.

Section 7 of the paper calls for "a more compact (possibly bound) form of
version vectors"; the same authors later answered it with Interval Tree
Clocks (2008).  We include an ITC implementation as the extension feature so
the ablation benchmarks can compare version stamps with their successor on
identical workloads.
"""

from .event_tree import (
    EventTree,
    event_leq,
    event_max,
    event_min,
    event_size_in_nodes,
    fill,
    grow,
    join_events,
    normalize_event,
    validate_event,
)
from .id_tree import (
    IdTree,
    id_size_in_nodes,
    is_leaf_id,
    normalize_id,
    split_id,
    sum_ids,
    validate_id,
)
from .stamp import ITCStamp

__all__ = [
    "ITCStamp",
    "IdTree",
    "EventTree",
    "validate_id",
    "normalize_id",
    "split_id",
    "sum_ids",
    "id_size_in_nodes",
    "is_leaf_id",
    "validate_event",
    "normalize_event",
    "event_min",
    "event_max",
    "event_leq",
    "join_events",
    "fill",
    "grow",
    "event_size_in_nodes",
]
