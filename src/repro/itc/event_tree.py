"""Event trees for Interval Tree Clocks.

An ITC event component maps every point of the unit interval to a number of
observed events, encoded compactly as a tree:

* ``n`` -- the whole subinterval has seen ``n`` events,
* ``(n, l, r)`` -- ``n`` events everywhere, plus whatever ``l``/``r`` add on
  the two halves.

This plays the role of the version-stamp ``update`` component.  The functions
here implement the standard ITC algebra: normalization, the partial order
``leq``, ``join`` (least upper bound), and the ``fill``/``grow`` pair used by
the ``event`` operation to record a new update as cheaply as possible inside
the replica's own interval.
"""

from __future__ import annotations

from typing import Tuple, Union

from ..core.errors import StampError
from .id_tree import IdTree

__all__ = [
    "EventTree",
    "validate_event",
    "normalize_event",
    "event_min",
    "event_max",
    "event_leq",
    "join_events",
    "fill",
    "grow",
    "event_size_in_nodes",
]

#: An event tree: a non-negative int or a triple ``(n, left, right)``.
EventTree = Union[int, Tuple[int, "EventTree", "EventTree"]]

#: Cost penalty for growing in depth rather than in value (from the ITC paper).
_GROW_DEPTH_PENALTY = 1000


def validate_event(event: EventTree) -> None:
    """Raise :class:`StampError` unless ``event`` is a well-formed event tree."""
    if isinstance(event, int) and not isinstance(event, bool):
        if event < 0:
            raise StampError(f"event counters must be non-negative: {event!r}")
        return
    if isinstance(event, tuple) and len(event) == 3:
        base, left, right = event
        if not isinstance(base, int) or isinstance(base, bool) or base < 0:
            raise StampError(f"event node base must be a non-negative int: {base!r}")
        validate_event(left)
        validate_event(right)
        return
    raise StampError(f"malformed ITC event tree: {event!r}")


def _is_leaf(event: EventTree) -> bool:
    return isinstance(event, int)


def _lift(event: EventTree, amount: int) -> EventTree:
    """Add ``amount`` to the root of ``event``."""
    if _is_leaf(event):
        return event + amount
    base, left, right = event
    return (base + amount, left, right)


def _sink(event: EventTree, amount: int) -> EventTree:
    """Subtract ``amount`` from the root of ``event``."""
    if _is_leaf(event):
        return event - amount
    base, left, right = event
    return (base - amount, left, right)


def event_min(event: EventTree) -> int:
    """The minimum number of events seen anywhere in the interval."""
    if _is_leaf(event):
        return event
    base, left, right = event
    return base + min(event_min(left), event_min(right))


def event_max(event: EventTree) -> int:
    """The maximum number of events seen anywhere in the interval."""
    if _is_leaf(event):
        return event
    base, left, right = event
    return base + max(event_max(left), event_max(right))


def normalize_event(event: EventTree) -> EventTree:
    """Normalize: equal leaves merge into their parent, minima sink to the root."""
    if _is_leaf(event):
        return event
    base, left, right = event
    left = normalize_event(left)
    right = normalize_event(right)
    if _is_leaf(left) and _is_leaf(right) and left == right:
        return base + left
    shift = min(event_min(left), event_min(right))
    return (base + shift, _sink(left, shift), _sink(right, shift))


def event_leq(first: EventTree, second: EventTree) -> bool:
    """The ITC partial order: ``first`` has seen no event ``second`` has not."""
    if _is_leaf(first) and _is_leaf(second):
        return first <= second
    if _is_leaf(first):
        base2, _, _ = second
        return first <= base2
    base1, left1, right1 = first
    if _is_leaf(second):
        return (
            base1 <= second
            and event_leq(_lift(left1, base1), second)
            and event_leq(_lift(right1, base1), second)
        )
    base2, left2, right2 = second
    return (
        base1 <= base2
        and event_leq(_lift(left1, base1), _lift(left2, base2))
        and event_leq(_lift(right1, base1), _lift(right2, base2))
    )


def join_events(first: EventTree, second: EventTree) -> EventTree:
    """Least upper bound of two event trees (pointwise maximum)."""
    if _is_leaf(first) and _is_leaf(second):
        return max(first, second)
    if _is_leaf(first):
        return join_events((first, 0, 0), second)
    if _is_leaf(second):
        return join_events(first, (second, 0, 0))
    base1, left1, right1 = first
    base2, left2, right2 = second
    if base1 > base2:
        return join_events(second, first)
    delta = base2 - base1
    joined = (
        base1,
        join_events(left1, _lift(left2, delta)),
        join_events(right1, _lift(right2, delta)),
    )
    return normalize_event(joined)


def fill(identity: IdTree, event: EventTree) -> EventTree:
    """Inflate the event tree inside the owned interval without new information.

    ``fill`` simplifies the event tree by raising the counters of the parts
    of the interval the replica owns up to the level already implied by the
    rest of the tree; it never records genuinely new events.
    """
    if identity == 0:
        return event
    if identity == 1:
        return event_max(event)
    if _is_leaf(event):
        return event
    id_left, id_right = identity
    base, ev_left, ev_right = event
    if id_left == 1:
        filled_right = fill(id_right, ev_right)
        new_left = max(event_max(ev_left), event_min(filled_right))
        return normalize_event((base, new_left, filled_right))
    if id_right == 1:
        filled_left = fill(id_left, ev_left)
        new_right = max(event_max(ev_right), event_min(filled_left))
        return normalize_event((base, filled_left, new_right))
    return normalize_event((base, fill(id_left, ev_left), fill(id_right, ev_right)))


def grow(identity: IdTree, event: EventTree) -> Tuple[EventTree, int]:
    """Record one new event in the owned interval, minimizing tree growth.

    Returns the grown event tree and an integer cost used to pick the
    cheapest spot (incrementing an existing counter is cheaper than
    deepening the tree).
    """
    if identity == 1 and _is_leaf(event):
        return event + 1, 0
    if _is_leaf(event):
        if identity == 0:
            raise StampError("an anonymous stamp (id 0) cannot record events")
        grown, cost = grow(identity, (event, 0, 0))
        return grown, cost + _GROW_DEPTH_PENALTY
    base, ev_left, ev_right = event
    if identity == 0:
        raise StampError("an anonymous stamp (id 0) cannot record events")
    if identity == 1:
        # Owning everything, bump the cheaper side.
        identity = (1, 1)
    id_left, id_right = identity
    if id_left == 0:
        grown_right, cost = grow(id_right, ev_right)
        return (base, ev_left, grown_right), cost + 1
    if id_right == 0:
        grown_left, cost = grow(id_left, ev_left)
        return (base, grown_left, ev_right), cost + 1
    grown_left, cost_left = grow(id_left, ev_left)
    grown_right, cost_right = grow(id_right, ev_right)
    if cost_left < cost_right:
        return (base, grown_left, ev_right), cost_left + 1
    return (base, ev_left, grown_right), cost_right + 1


def event_size_in_nodes(event: EventTree) -> int:
    """Number of tree nodes, the natural size measure for ITC event trees."""
    if _is_leaf(event):
        return 1
    _, left, right = event
    return 1 + event_size_in_nodes(left) + event_size_in_nodes(right)
