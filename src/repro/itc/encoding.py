"""Compact binary serialization of Interval Tree Clock stamps.

Mirrors the trie codec of :mod:`repro.core.encoding` for the ITC family: a
stamp is encoded as a self-delimiting bit stream -- the identity tree first,
then the event tree -- and the byte form carries an explicit bit count so
the zero padding of the final byte is unambiguous.

Bit grammar::

    id    := 0 v          -- leaf owning nothing (v=0) or everything (v=1)
           | 1 id id      -- interior node (left half, right half)
    event := 0 gamma(n)   -- leaf: n events everywhere in the subinterval
           | 1 gamma(n) event event
    gamma(n)              -- Elias gamma code of n+1 (so n = 0 is encodable)

The counters use Elias gamma rather than fixed-width fields, so the encoded
size reflects the actual information content -- this is the family's
``encoded_size_bits()`` yardstick in the space experiments.

All decoding failures raise :class:`~repro.core.errors.EncodingError` (or a
subclass), never a raw struct/index error.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.errors import EncodingError, EnvelopeTruncatedError
from .event_tree import EventTree
from .id_tree import IdTree

__all__ = [
    "stamp_components_to_bits",
    "stamp_components_from_bits",
    "itc_to_bytes",
    "itc_from_bytes",
    "itc_encoded_size_bits",
]


def _gamma_bits(value: int, out: List[int]) -> None:
    """Elias gamma code of ``value + 1`` (handles the frequent zero)."""
    shifted = value + 1
    width = shifted.bit_length()
    out.extend([0] * (width - 1))
    for shift in range(width - 1, -1, -1):
        out.append((shifted >> shift) & 1)


def _id_bits(tree: IdTree, out: List[int]) -> None:
    if isinstance(tree, tuple):
        out.append(1)
        _id_bits(tree[0], out)
        _id_bits(tree[1], out)
    else:
        out.append(0)
        out.append(1 if tree else 0)


def _event_bits(tree: EventTree, out: List[int]) -> None:
    if isinstance(tree, tuple):
        out.append(1)
        _gamma_bits(tree[0], out)
        _event_bits(tree[1], out)
        _event_bits(tree[2], out)
    else:
        out.append(0)
        _gamma_bits(tree, out)


#: Deepest tree nesting the decoder will follow.  Honest ITC trees are
#: shallow (depth tracks the number of live interval splits); a crafted
#: all-ones payload would otherwise recurse until the interpreter dies with
#: a raw RecursionError instead of a typed rejection.
_MAX_TREE_DEPTH = 512


class _BitReader:
    __slots__ = ("_bits", "_pos")

    def __init__(self, bits: List[int]) -> None:
        self._bits = bits
        self._pos = 0

    def read(self) -> int:
        if self._pos >= len(self._bits):
            raise EnvelopeTruncatedError("truncated ITC bit stream")
        bit = self._bits[self._pos]
        self._pos += 1
        return bit

    def remaining(self) -> int:
        return len(self._bits) - self._pos


def _read_gamma(reader: _BitReader) -> int:
    zeros = 0
    while reader.read() == 0:
        zeros += 1
        if zeros > 128:
            raise EncodingError("ITC counter gamma code wider than 128 bits")
    value = 1
    for _ in range(zeros):
        value = (value << 1) | reader.read()
    return value - 1


def _read_id(reader: _BitReader, depth: int = 0) -> IdTree:
    if depth > _MAX_TREE_DEPTH:
        raise EncodingError(f"ITC id tree deeper than {_MAX_TREE_DEPTH}")
    if reader.read():
        return (_read_id(reader, depth + 1), _read_id(reader, depth + 1))
    return reader.read()


def _read_event(reader: _BitReader, depth: int = 0) -> EventTree:
    if depth > _MAX_TREE_DEPTH:
        raise EncodingError(f"ITC event tree deeper than {_MAX_TREE_DEPTH}")
    if reader.read():
        base = _read_gamma(reader)
        return (
            base,
            _read_event(reader, depth + 1),
            _read_event(reader, depth + 1),
        )
    return _read_gamma(reader)


def stamp_components_to_bits(identity: IdTree, events: EventTree) -> List[int]:
    """Encode an (identity, events) pair as one self-delimiting bit list."""
    bits: List[int] = []
    _id_bits(identity, bits)
    _event_bits(events, bits)
    return bits


def stamp_components_from_bits(bits: List[int]) -> Tuple[IdTree, EventTree]:
    """Decode :func:`stamp_components_to_bits` output; rejects trailing bits."""
    reader = _BitReader(bits)
    identity = _read_id(reader)
    events = _read_event(reader)
    if reader.remaining():
        raise EncodingError(
            f"{reader.remaining()} trailing bits after decoding an ITC stamp"
        )
    return identity, events


def itc_encoded_size_bits(stamp) -> int:
    """Exact bit length of the compact encoding of ``stamp``."""
    return len(stamp_components_to_bits(stamp.identity, stamp.events))


def itc_to_bytes(stamp) -> bytes:
    """Encode a stamp to bytes: a 4-byte bit count followed by packed bits."""
    from ..kernel.wire import bits_to_length_prefixed

    bits = stamp_components_to_bits(stamp.identity, stamp.events)
    return bits_to_length_prefixed(bits, count_bytes=4)


def itc_from_bytes(payload: bytes):
    """Decode :func:`itc_to_bytes` output back into an :class:`ITCStamp`.

    Canonical-form validation (exact byte length, zero padding) happens in
    :func:`repro.kernel.wire.bits_from_length_prefixed`, shared with the
    other bit-level codecs.
    """
    from ..kernel.wire import bits_from_length_prefixed
    from .stamp import ITCStamp

    bits = bits_from_length_prefixed(payload, count_bytes=4)
    identity, events = stamp_components_from_bits(bits)
    try:
        return ITCStamp(identity, events)
    except Exception as exc:  # noqa: BLE001 - normalize to EncodingError
        raise EncodingError(f"decoded trees do not form an ITC stamp: {exc}") from exc
