"""Compact binary serialization of Interval Tree Clock stamps.

Mirrors the trie codec of :mod:`repro.core.encoding` for the ITC family: a
stamp is encoded as a self-delimiting bit stream -- the identity tree first,
then the event tree -- and the byte form carries an explicit bit count so
the zero padding of the final byte is unambiguous.

Bit grammar::

    id    := 0 v          -- leaf owning nothing (v=0) or everything (v=1)
           | 1 id id      -- interior node (left half, right half)
    event := 0 gamma(n)   -- leaf: n events everywhere in the subinterval
           | 1 gamma(n) event event
    gamma(n)              -- Elias gamma code of n+1 (so n = 0 is encodable)

The counters use Elias gamma rather than fixed-width fields, so the encoded
size reflects the actual information content -- this is the family's
``encoded_size_bits()`` yardstick in the space experiments.

All decoding failures raise :class:`~repro.core.errors.EncodingError` (or a
subclass), never a raw struct/index error.

The codec is **canonical both ways**: stamps normalize their trees at
construction, so an honest encoding is always the unique normal-form bit
string, and the decoders *reject* non-normal trees (a collapsible id pair,
mergeable event leaves, an unsunk child minimum) instead of quietly
normalizing them.  Distinct byte strings therefore never decode equal --
the property the decode interns and the stream
:class:`~repro.kernel.stream.InternTable` key on, and what confines a
corrupted-but-parseable payload to "typed rejection" rather than silently
admitted damage.

Fast path
---------
The byte form (:func:`itc_to_bytes` / :func:`itc_from_bytes`) never builds
a Python list of 0/1 ints: encoding accumulates the bit stream in a single
arbitrary-precision integer (a gamma code is one shift-and-or, since its
leading zeros are implied by the coded value's width) that one bulk
``int.to_bytes`` converts, and decoding runs the grammar directly over the
integer produced by one bulk ``int.from_bytes``, reading each structure
bit with a local shift-and-mask and each gamma payload with a single
masked extraction.  The list-based functions are retained as the readable
reference implementation, pinned to the fast path by differential tests.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.errors import EncodingError, EnvelopeTruncatedError
from .event_tree import EventTree
from .id_tree import IdTree

__all__ = [
    "stamp_components_to_bits",
    "stamp_components_from_bits",
    "stamp_components_to_packed",
    "itc_to_bytes",
    "itc_from_bytes",
    "itc_encoded_size_bits",
]


def _gamma_bits(value: int, out: List[int]) -> None:
    """Elias gamma code of ``value + 1`` (handles the frequent zero)."""
    shifted = value + 1
    width = shifted.bit_length()
    out.extend([0] * (width - 1))
    for shift in range(width - 1, -1, -1):
        out.append((shifted >> shift) & 1)


def _id_bits(tree: IdTree, out: List[int]) -> None:
    if isinstance(tree, tuple):
        out.append(1)
        _id_bits(tree[0], out)
        _id_bits(tree[1], out)
    else:
        out.append(0)
        out.append(1 if tree else 0)


def _event_bits(tree: EventTree, out: List[int]) -> None:
    if isinstance(tree, tuple):
        out.append(1)
        _gamma_bits(tree[0], out)
        _event_bits(tree[1], out)
        _event_bits(tree[2], out)
    else:
        out.append(0)
        _gamma_bits(tree, out)


#: Deepest tree nesting the decoder will follow.  Honest ITC trees are
#: shallow (depth tracks the number of live interval splits); a crafted
#: all-ones payload would otherwise recurse until the interpreter dies with
#: a raw RecursionError instead of a typed rejection.
_MAX_TREE_DEPTH = 512


class _BitReader:
    __slots__ = ("_bits", "_pos")

    def __init__(self, bits: List[int]) -> None:
        self._bits = bits
        self._pos = 0

    def read(self) -> int:
        if self._pos >= len(self._bits):
            raise EnvelopeTruncatedError("truncated ITC bit stream")
        bit = self._bits[self._pos]
        self._pos += 1
        return bit

    def remaining(self) -> int:
        return len(self._bits) - self._pos


def _read_gamma(reader: _BitReader) -> int:
    zeros = 0
    while reader.read() == 0:
        zeros += 1
        if zeros > 128:
            raise EncodingError("ITC counter gamma code wider than 128 bits")
    value = 1
    for _ in range(zeros):
        value = (value << 1) | reader.read()
    return value - 1


def _read_id(reader: _BitReader, depth: int = 0) -> IdTree:
    if depth > _MAX_TREE_DEPTH:
        raise EncodingError(f"ITC id tree deeper than {_MAX_TREE_DEPTH}")
    if reader.read():
        left = _read_id(reader, depth + 1)
        right = _read_id(reader, depth + 1)
        if type(left) is int and left == right:
            raise EncodingError(
                "non-canonical ITC id tree: "
                f"({left}, {right}) must be collapsed to {left}"
            )
        return (left, right)
    return reader.read()


def _read_event(reader: _BitReader, depth: int = 0) -> EventTree:
    if depth > _MAX_TREE_DEPTH:
        raise EncodingError(f"ITC event tree deeper than {_MAX_TREE_DEPTH}")
    if reader.read():
        base = _read_gamma(reader)
        left = _read_event(reader, depth + 1)
        right = _read_event(reader, depth + 1)
        left_leaf = type(left) is int
        if left_leaf and left == right:
            raise EncodingError(
                "non-canonical ITC event tree: equal leaf children must be "
                "merged into their parent"
            )
        lmin = left if left_leaf else left[0]
        rmin = right if type(right) is int else right[0]
        if lmin and rmin:
            raise EncodingError(
                "non-canonical ITC event tree: the children's shared "
                "minimum must be sunk into the base"
            )
        return (base, left, right)
    return _read_gamma(reader)


def stamp_components_to_bits(identity: IdTree, events: EventTree) -> List[int]:
    """Encode an (identity, events) pair as one self-delimiting bit list."""
    bits: List[int] = []
    _id_bits(identity, bits)
    _event_bits(events, bits)
    return bits


# -- packed fast path ---------------------------------------------------------


def _gamma_packed(counter: int, value: int, count: int) -> Tuple[int, int]:
    # gamma(n) = (width-1) zeros then the width bits of n+1, whose top bit
    # is 1 -- so the whole code is one shift by 2*width-1 and an or.
    shifted = counter + 1
    width = shifted.bit_length()
    return (value << (2 * width - 1)) | shifted, count + 2 * width - 1


def _id_packed(tree: IdTree, value: int, count: int) -> Tuple[int, int]:
    if isinstance(tree, tuple):
        value, count = _id_packed(tree[0], (value << 1) | 1, count + 1)
        return _id_packed(tree[1], value, count)
    return (value << 2) | (1 if tree else 0), count + 2


def _event_packed(tree: EventTree, value: int, count: int) -> Tuple[int, int]:
    if isinstance(tree, tuple):
        value, count = _gamma_packed(tree[0], (value << 1) | 1, count + 1)
        value, count = _event_packed(tree[1], value, count)
        return _event_packed(tree[2], value, count)
    return _gamma_packed(tree, value << 1, count + 1)


def stamp_components_to_packed(
    identity: IdTree, events: EventTree
) -> Tuple[int, int]:
    """The stamp bit stream as one packed ``(value, count)`` pair."""
    value, count = _id_packed(identity, 0, 0)
    return _event_packed(events, value, count)


def _read_gamma_str(bits: str, pos: int) -> Tuple[int, int]:
    # gamma = zeros(width-1) then the width bits of n+1 (top bit 1): find
    # the first 1 at C speed, then parse the payload with one int() call.
    one = bits.find("1", pos)
    if one < 0:
        raise EnvelopeTruncatedError("truncated ITC bit stream")
    zeros = one - pos
    if zeros > 128:
        raise EncodingError("ITC counter gamma code wider than 128 bits")
    end = one + zeros + 1
    if end > len(bits):
        raise EnvelopeTruncatedError("truncated ITC bit stream")
    return int(bits[one:end], 2) - 1, end


#: Marks an interior id node whose left child is still being parsed.
_OPEN = object()


def _read_id_str(bits: str, pos: int):
    """Decode an id tree, rejecting non-normal-form encodings on the way up.

    Honest encoders only ever serialize normalized trees (stamps normalize
    at construction), so a ``(0,0)``/``(1,1)`` subtree on the wire is
    damage or forgery -- accepting and silently re-normalizing it would
    let two distinct byte strings decode equal, breaking the canonicity
    the decode interns rely on.  Iterative: the explicit stack holds, per
    open interior node, either the :data:`_OPEN` marker (left child still
    parsing) or the finished left subtree -- one loop iteration per
    grammar token instead of one Python frame per node.  Truncation
    surfaces as ``IndexError`` for the caller to remap.
    """
    stack = []
    while True:
        if bits[pos] == "1":  # interior: open it, parse the left child
            pos += 1
            if len(stack) > _MAX_TREE_DEPTH:
                raise EncodingError(
                    f"ITC id tree deeper than {_MAX_TREE_DEPTH}"
                )
            stack.append(_OPEN)
            continue
        value = 1 if bits[pos + 1] == "1" else 0
        pos += 2
        while True:  # a subtree just finished: close completed interiors
            if not stack:
                return value, pos
            top = stack[-1]
            if top is _OPEN:
                stack[-1] = value  # left done; go parse the right child
                break
            stack.pop()
            if type(top) is int and top == value:
                raise EncodingError(
                    "non-canonical ITC id tree: "
                    f"({top}, {value}) must be collapsed to {value}"
                )
            value = (top, value)


def _read_event_str(bits: str, pos: int, depth: int):
    """Decode an event tree, rejecting non-normal-form encodings.

    Children are verified normal before their parent is assembled, so the
    minimum of a child is O(1) to read (its base / leaf value) and the
    parent checks are exactly the two ``normalize_event`` rewrite
    conditions -- equal leaf children, nonzero shared minimum -- raised as
    typed errors instead of applied, because an honest encoder never emits
    either (stamps normalize at construction).  Leaf children (a
    gamma-coded counter) are consumed in the parent's frame, so only
    interior nodes pay for a call.
    """
    if depth > _MAX_TREE_DEPTH:
        raise EncodingError(f"ITC event tree deeper than {_MAX_TREE_DEPTH}")
    if bits[pos] == "1":
        base, pos = _read_gamma_str(bits, pos + 1)
        # Leaf children (a "0" marker + gamma) are consumed here rather
        # than through a _read_event_str frame of their own.
        if bits[pos] == "0":
            left, pos = _read_gamma_str(bits, pos + 1)
        else:
            left, pos = _read_event_str(bits, pos, depth + 1)
        if bits[pos] == "0":
            right, pos = _read_gamma_str(bits, pos + 1)
        else:
            right, pos = _read_event_str(bits, pos, depth + 1)
        left_leaf = type(left) is int
        if left_leaf and left == right:
            raise EncodingError(
                "non-canonical ITC event tree: equal leaf children must be "
                "merged into their parent"
            )
        lmin = left if left_leaf else left[0]
        rmin = right if type(right) is int else right[0]
        if lmin and rmin:
            raise EncodingError(
                "non-canonical ITC event tree: the children's shared "
                "minimum must be sunk into the base"
            )
        return (base, left, right), pos
    return _read_gamma_str(bits, pos + 1)


def stamp_components_from_bits(bits: List[int]) -> Tuple[IdTree, EventTree]:
    """Decode :func:`stamp_components_to_bits` output; rejects trailing bits."""
    reader = _BitReader(bits)
    identity = _read_id(reader)
    events = _read_event(reader)
    if reader.remaining():
        raise EncodingError(
            f"{reader.remaining()} trailing bits after decoding an ITC stamp"
        )
    return identity, events


# Bound lazily on first use: importing :mod:`repro.kernel.wire` at module
# load would run the kernel package __init__, which circles back into this
# module through the clock classes -- and a per-call ``import`` statement
# costs more than the decode it serves (~1us each on the hot path).
_wire = None
_ITCStamp = None

#: Decode-side intern, mirroring :data:`repro.core.encoding._DECODE_INTERN`:
#: the codec is canonical, so payload bytes identify the decoded stamp and
#: re-decoding the unchanged metadata a peer re-ships every anti-entropy
#: round is a dictionary hit.  Bounded FIFO; only successful decodes are
#: cached.
_DECODE_INTERN = {}
_DECODE_INTERN_MAX = 1 << 15


def _bind_late_imports() -> None:
    global _wire, _ITCStamp
    from ..kernel import wire
    from .stamp import ITCStamp

    _wire = wire
    _ITCStamp = ITCStamp


def itc_encoded_size_bits(stamp) -> int:
    """Exact bit length of the compact encoding of ``stamp``."""
    _, count = stamp_components_to_packed(stamp.identity, stamp.events)
    return count


def itc_to_bytes(stamp) -> bytes:
    """Encode a stamp to bytes: a 4-byte bit count followed by packed bits.

    The bit stream is accumulated in one packed integer and converted with
    a single bulk ``int.to_bytes``.
    """
    if _wire is None:
        _bind_late_imports()
    value, count = stamp_components_to_packed(stamp.identity, stamp.events)
    return _wire.packed_to_length_prefixed(value, count, count_bytes=4)


def itc_from_bytes(payload):
    """Decode :func:`itc_to_bytes` output back into an :class:`ITCStamp`.

    Accepts any byte buffer (``bytes``/``bytearray``/``memoryview``)
    without copying it.  Canonical-form validation (exact byte length,
    zero padding) happens in
    :func:`repro.kernel.wire.packed_from_length_prefixed`, shared with the
    other bit-level codecs.
    """
    if _ITCStamp is None:
        _bind_late_imports()
    key = bytes(payload)
    cached = _DECODE_INTERN.get(key)
    if cached is not None:
        return cached
    # Inlined packed_from_length_prefixed(count_bytes=4): this is the
    # per-message hot path of every replication exchange.
    if len(payload) < 4:
        raise EnvelopeTruncatedError(
            f"packed bit stream needs a 4-byte length prefix, "
            f"got {len(payload)} bytes"
        )
    count = int.from_bytes(payload[:4], "big")
    body = payload[4:]
    if (count + 7) >> 3 != len(body):
        raise EncodingError(
            f"payload declares {count} bits but carries {len(body)} bytes"
        )
    padded = int.from_bytes(body, "big")
    pad = (-count) % 8
    if padded & ((1 << pad) - 1):
        raise EncodingError("nonzero padding bits in the final payload byte")
    bits = format(padded >> pad, "b").rjust(count, "0")
    try:
        identity, pos = _read_id_str(bits, 0)
        events, pos = _read_event_str(bits, pos, 0)
    except IndexError:
        raise EnvelopeTruncatedError("truncated ITC bit stream") from None
    if pos != count:
        raise EncodingError(
            f"{count - pos} trailing bits after decoding an ITC stamp"
        )
    # The grammar guarantees well-formed trees (0/1 id leaves, non-negative
    # counters) and the readers reject anything outside normal form, so the
    # full validating constructor would only repeat work already done.
    stamp = _ITCStamp._trusted(identity, events)
    if len(_DECODE_INTERN) >= _DECODE_INTERN_MAX:
        del _DECODE_INTERN[next(iter(_DECODE_INTERN))]
    _DECODE_INTERN[key] = stamp
    return stamp
