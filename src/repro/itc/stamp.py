"""Interval Tree Clock stamps (the paper's future-work direction, realized).

An ITC stamp pairs an identity tree with an event tree and supports the same
fork/event/join calculus as version stamps:

* ``fork``  -- split the identity; both children keep the full event tree.
* ``event`` -- record an update inside the owned interval (``fill``/``grow``).
* ``join``  -- sum identities and join event trees.
* ``peek``  -- produce an anonymous (id ``0``) read-only copy, useful for
  shipping causal metadata on messages.

The comparison (``leq`` / :meth:`compare`) looks only at the event component,
exactly as version stamps compare only their ``update`` components, so the
lockstep runner can check ITC against the causal-history oracle with the same
machinery.
"""

from __future__ import annotations

from typing import Tuple

from ..core.errors import StampError
from ..core.order import Ordering, ordering_from_leq
from .event_tree import (
    EventTree,
    event_leq,
    event_size_in_nodes,
    fill,
    grow,
    join_events,
    normalize_event,
    validate_event,
)
from .id_tree import (
    IdTree,
    id_size_in_nodes,
    normalize_id,
    split_id,
    sum_ids,
    validate_id,
)

__all__ = ["ITCStamp"]


class ITCStamp:
    """An immutable Interval Tree Clock stamp ``(identity, events)``."""

    __slots__ = ("_identity", "_events")

    def __init__(self, identity: IdTree = 1, events: EventTree = 0) -> None:
        validate_id(identity)
        validate_event(events)
        object.__setattr__(self, "_identity", normalize_id(identity))
        object.__setattr__(self, "_events", normalize_event(events))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ITCStamp instances are immutable")

    # -- constructors -------------------------------------------------

    @classmethod
    def seed(cls) -> "ITCStamp":
        """The initial stamp ``(1, 0)``: owns everything, has seen nothing."""
        return cls(1, 0)

    @classmethod
    def _trusted(cls, identity: IdTree, events: EventTree) -> "ITCStamp":
        """Internal fast constructor for pre-validated, pre-normalized trees.

        The wire decoder's grammar cannot produce a malformed tree and its
        readers normalize bottom-up, so re-running ``validate_*`` and
        ``normalize_*`` there would only repeat the walk.  Callers must
        guarantee both properties; everything else uses ``__init__``.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "_identity", identity)
        object.__setattr__(self, "_events", events)
        return self

    # -- accessors ------------------------------------------------------

    @property
    def identity(self) -> IdTree:
        """The identity tree (which interval this replica owns)."""
        return self._identity

    @property
    def events(self) -> EventTree:
        """The event tree (which updates this replica has seen)."""
        return self._events

    @property
    def is_anonymous(self) -> bool:
        """True for stamps that own nothing and therefore cannot record events."""
        return self._identity == 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ITCStamp):
            return self._identity == other._identity and self._events == other._events
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ITCStamp", repr(self._identity), repr(self._events)))

    def __repr__(self) -> str:
        return f"ITCStamp(identity={self._identity!r}, events={self._events!r})"

    # -- the core operations -----------------------------------------------

    def fork(self) -> Tuple["ITCStamp", "ITCStamp"]:
        """Split into two stamps with disjoint identities and equal knowledge."""
        left_id, right_id = split_id(self._identity)
        return ITCStamp(left_id, self._events), ITCStamp(right_id, self._events)

    def peek(self) -> "ITCStamp":
        """An anonymous copy carrying only the event component."""
        return ITCStamp(0, self._events)

    def event(self) -> "ITCStamp":
        """Record one update inside the owned interval.

        Raises
        ------
        StampError
            If the stamp is anonymous (identity ``0``).
        """
        if self.is_anonymous:
            raise StampError("an anonymous ITC stamp cannot record events")
        filled = fill(self._identity, self._events)
        if filled != self._events:
            return ITCStamp(self._identity, filled)
        grown, _cost = grow(self._identity, self._events)
        return ITCStamp(self._identity, grown)

    def join(self, other: "ITCStamp") -> "ITCStamp":
        """Merge with another stamp (sum identities, join event trees)."""
        if not isinstance(other, ITCStamp):
            raise StampError(f"cannot join an ITC stamp with {type(other).__name__}")
        identity = sum_ids(self._identity, other._identity)
        events = join_events(self._events, other._events)
        return ITCStamp(identity, events)

    def sync(self, other: "ITCStamp") -> Tuple["ITCStamp", "ITCStamp"]:
        """Synchronize two replicas: join then fork."""
        return self.join(other).fork()

    # -- comparison --------------------------------------------------------

    def leq(self, other: "ITCStamp") -> bool:
        """True when this stamp has seen no event unknown to ``other``."""
        return event_leq(self._events, other._events)

    def compare(self, other: "ITCStamp") -> Ordering:
        """Three-way comparison of the two stamps' event knowledge."""
        return ordering_from_leq(self, other, ITCStamp.leq)

    def concurrent(self, other: "ITCStamp") -> bool:
        """True when the stamps are mutually inconsistent."""
        return self.compare(other) is Ordering.CONCURRENT

    # -- size accounting -----------------------------------------------------

    def size_in_nodes(self) -> int:
        """Total number of tree nodes across both components."""
        return id_size_in_nodes(self._identity) + event_size_in_nodes(self._events)

    def size_in_bits(self, *, counter_bits: int = 32) -> int:
        """A simple encoded-size model: 2 structure bits + counters per node."""
        id_nodes = id_size_in_nodes(self._identity)
        event_nodes = event_size_in_nodes(self._events)
        return id_nodes * 2 + event_nodes * (2 + counter_bits)

    # -- kernel protocol serialization ---------------------------------------

    def encoded_size_bits(self) -> int:
        """Exact bit size of the compact binary encoding (the kernel yardstick)."""
        from .encoding import itc_encoded_size_bits

        return itc_encoded_size_bits(self)

    def to_bytes(self) -> bytes:
        """Compact binary encoding of both trees (:mod:`repro.itc.encoding`).

        This is the raw family payload; the epoch-tagged wire envelope lives
        one level up, in :mod:`repro.kernel.envelope`.
        """
        from .encoding import itc_to_bytes

        return itc_to_bytes(self)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "ITCStamp":
        """Decode :meth:`to_bytes` output."""
        from .encoding import itc_from_bytes

        return itc_from_bytes(payload)
