"""Reusable hypothesis strategies and trace generators for testing repro.

The test suite used to keep these in ``tests/conftest.py`` and pull them in
with relative imports (``from ..conftest import ...``), which breaks pytest
collection when the ``tests`` directory is not a package.  They live here
instead, as a small public testing toolkit: anything that can import
``repro`` can import ``repro.testing`` -- the repository's own tests, the
differential harness, and downstream users writing property tests against
their integration of version stamps.

This module requires `hypothesis <https://hypothesis.readthedocs.io>`_,
which is a test-only dependency; importing it outside a test environment
raises ``ImportError`` like any missing optional dependency.
"""

from __future__ import annotations

import random
from typing import List

from hypothesis import strategies as st

from repro.core.bitstring import BitString
from repro.core.names import Name, maximal_strings
from repro.sim.trace import Operation, Trace

__all__ = ["bitstrings", "names", "trace_operations", "kernel_clocks"]


@st.composite
def bitstrings(draw, max_length: int = 8) -> BitString:
    """Arbitrary binary strings up to ``max_length`` bits."""
    bits = draw(st.lists(st.integers(min_value=0, max_value=1), max_size=max_length))
    return BitString(bits)


@st.composite
def names(draw, max_strings: int = 5, max_length: int = 6) -> Name:
    """Arbitrary well-formed names (antichains), built by maximal-element
    normalization of a random string set."""
    strings = draw(
        st.lists(bitstrings(max_length=max_length), min_size=0, max_size=max_strings)
    )
    return Name.from_down_set(maximal_strings(strings))


@st.composite
def trace_operations(draw, max_operations: int = 25, max_frontier: int = 6):
    """Random well-formed traces for lockstep property tests."""
    count = draw(st.integers(min_value=0, max_value=max_operations))
    rng_seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(rng_seed)
    label_counter = [0]

    def fresh() -> str:
        label_counter[0] += 1
        return f"t{label_counter[0]}"

    seed_label = fresh()
    alive: List[str] = [seed_label]
    operations: List[Operation] = []
    for _ in range(count):
        kinds = ["update"]
        if len(alive) < max_frontier:
            kinds.append("fork")
        if len(alive) >= 2:
            kinds.extend(["join", "sync"])
        kind = rng.choice(kinds)
        if kind == "update":
            source = rng.choice(alive)
            result = fresh()
            operations.append(Operation.update(source, result))
            alive.remove(source)
            alive.append(result)
        elif kind == "fork":
            source = rng.choice(alive)
            left, right = fresh(), fresh()
            operations.append(Operation.fork(source, left, right))
            alive.remove(source)
            alive.extend((left, right))
        elif kind == "join":
            source, other = rng.sample(alive, 2)
            result = fresh()
            operations.append(Operation.join(source, other, result))
            alive.remove(source)
            alive.remove(other)
            alive.append(result)
        else:
            source, other = rng.sample(alive, 2)
            left, right = fresh(), fresh()
            operations.append(Operation.sync(source, other, left, right))
            alive.remove(source)
            alive.remove(other)
            alive.extend((left, right))
    return Trace(seed=seed_label, operations=tuple(operations), name="hypothesis")


@st.composite
def kernel_clocks(draw, family: str, max_operations: int = 12, max_epoch: int = 5):
    """Arbitrary clocks of one kernel family, reached by random evolutions.

    Starts from the family's seed clock, applies a random fork/event/join
    walk, picks one survivor and stamps it with a random re-rooting epoch --
    so round-trip properties cover non-trivial states *and* the epoch tag.
    """
    from repro import kernel

    count = draw(st.integers(min_value=0, max_value=max_operations))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    epoch = draw(st.integers(min_value=0, max_value=max_epoch))
    pool = [kernel.make(family)]
    for _ in range(count):
        kinds = ["event", "fork"]
        if len(pool) >= 2:
            kinds.append("join")
        kind = rng.choice(kinds)
        if kind == "event":
            index = rng.randrange(len(pool))
            pool[index] = pool[index].event()
        elif kind == "fork":
            left, right = pool.pop(rng.randrange(len(pool))).fork()
            pool.extend((left, right))
        else:
            first, second = rng.sample(range(len(pool)), 2)
            joined = pool[first].join(pool[second])
            for index in sorted((first, second), reverse=True):
                del pool[index]
            pool.append(joined)
    return rng.choice(pool).with_epoch(epoch)
