"""The service-side sync engine: incremental decode on the async path.

:class:`AsyncWireSyncEngine` is a :class:`~repro.replication.synchronizer.
WireSyncEngine` whose stream-decode hook feeds arriving bodies through the
kernel's :class:`~repro.kernel.stream.IncrementalStreamDecoder` in fixed
size chunks, the way an asyncio protocol would hand frames up as they land
on the socket -- instead of requiring the whole body in one buffer first.
Everything else (merge order, retry RNG, meter accounting, fault handling)
is inherited unchanged, which is what makes the async service bit-for-bit
comparable to the synchronous engine on identical schedules.
"""

from __future__ import annotations

from ..kernel.stream import ClockStream, IncrementalStreamDecoder
from ..replication.synchronizer import WireSyncEngine

__all__ = ["AsyncWireSyncEngine"]


class AsyncWireSyncEngine(WireSyncEngine):
    """Wire sync engine decoding batched streams incrementally.

    Parameters
    ----------
    chunk_bytes:
        Size of the simulated network reads fed to the incremental
        decoder (default 4096, a typical socket read).
    """

    def __init__(self, *, chunk_bytes: int = 4096, **kwargs) -> None:
        if chunk_bytes <= 0:
            raise ValueError(f"chunk size must be positive, got {chunk_bytes}")
        super().__init__(**kwargs)
        self.chunk_bytes = chunk_bytes
        #: Total chunks fed through incremental decoders (observability).
        self.chunks_fed = 0

    def _decode_stream(self, body) -> ClockStream:
        decoder = IncrementalStreamDecoder()
        view = memoryview(body)
        for start in range(0, len(view), self.chunk_bytes):
            decoder.feed(view[start : start + self.chunk_bytes])
            self.chunks_fed += 1
        return decoder.finish(intern=self.intern)
