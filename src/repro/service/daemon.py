"""The asyncio face of one simulated replica.

A :class:`ReplicaDaemon` wraps a :class:`~repro.replication.node.MobileNode`
and drives the engine's sans-io :meth:`~repro.replication.synchronizer.
WireSyncEngine.session` generator on the virtual clock: every
:class:`~repro.replication.synchronizer.TransferEffect` becomes an
``asyncio.sleep`` for the link's virtual delay, every
:class:`~repro.replication.synchronizer.SleepEffect` (retry backoff)
sleeps its virtual seconds.  The generator itself performs *all* state
mutation, RNG draws and meter accounting, so the merge outcome is
identical to the synchronous driver's -- the daemon only decides when
virtual time passes.

Per-shard ``asyncio.Lock`` objects serialize concurrent sessions touching
the same (replica, shard); they are created lazily *inside* the running
loop (Python 3.9 binds primitives to the loop at construction time).
"""

from __future__ import annotations

import asyncio
import random
from typing import List, Optional

from ..replication.node import MobileNode
from ..replication.store import MergeReport
from ..replication.synchronizer import SleepEffect, TransferEffect, WireSyncEngine
from .links import LinkProfile

__all__ = ["ReplicaDaemon"]


class ReplicaDaemon:
    """One replica's daemon: a mobile node plus its per-shard locks."""

    __slots__ = ("node", "index", "_locks", "checker")

    def __init__(self, node: MobileNode, index: int, *, checker=None) -> None:
        self.node = node
        self.index = index
        self._locks: Optional[List[asyncio.Lock]] = None
        #: Optional :class:`~repro.contracts.ContractChecker` (duck-typed:
        #: anything with ``scan()``) evaluated right after every session
        #: this daemon initiates -- per-session contract granularity, so a
        #: violation is pinned to the exchange that failed to cure it.
        self.checker = checker

    def lock(self, shard: int) -> asyncio.Lock:
        """The lock guarding ``shard`` of this replica (created in-loop)."""
        if self._locks is None:
            raise RuntimeError("locks not initialised; call ensure_locks first")
        return self._locks[shard]

    def ensure_locks(self, shard_count: int) -> None:
        """Create the per-shard locks; must run inside the event loop."""
        if self._locks is None or len(self._locks) != shard_count:
            self._locks = [asyncio.Lock() for _ in range(shard_count)]

    async def drive_session(
        self,
        peer: "ReplicaDaemon",
        engine: WireSyncEngine,
        *,
        keys: Optional[List[str]] = None,
        link: LinkProfile,
        link_rng: random.Random,
    ) -> MergeReport:
        """Run one anti-entropy session with ``peer`` on the virtual clock."""
        session = engine.session(self.node.store, peer.node.store, keys=keys)
        meter = engine.meter
        while True:
            try:
                effect = next(session)
            except StopIteration as stop:
                if self.checker is not None:
                    self.checker.scan()
                return stop.value
            if type(effect) is TransferEffect:
                delay = link.leg_delay(effect.nbytes, link_rng)
                meter.record_transfer_latency(delay)
                if delay > 0:
                    await asyncio.sleep(delay)
            elif type(effect) is SleepEffect:
                if effect.seconds > 0:
                    await asyncio.sleep(effect.seconds)
