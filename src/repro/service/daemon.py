"""The asyncio face of one simulated replica.

A :class:`ReplicaDaemon` wraps a :class:`~repro.replication.node.MobileNode`
and drives the engine's sans-io :meth:`~repro.replication.synchronizer.
WireSyncEngine.session` generator on the virtual clock: every
:class:`~repro.replication.synchronizer.TransferEffect` becomes an
``asyncio.sleep`` for the link's virtual delay, every
:class:`~repro.replication.synchronizer.SleepEffect` (retry backoff)
sleeps its virtual seconds.  The generator itself performs *all* state
mutation, RNG draws and meter accounting, so the merge outcome is
identical to the synchronous driver's -- the daemon only decides when
virtual time passes.

Defensive driving (the grey-failure layer): given a ``deadline``, the
daemon tracks the session's spent virtual time across effects and, the
moment the next wait would cross the deadline, sleeps only the remainder,
throws :class:`~repro.replication.synchronizer.SessionAbort` into the
generator (which rolls both replicas back to their pre-session state) and
raises a typed :class:`~repro.core.errors.SessionTimeout`.  Given a
resolved :class:`~repro.replication.degradation.DegradationState`, each
transfer leg's delay is additionally shaped by the grey modes (slowdown
factors, throttle windows, flap waits) and any stuck-session hang the
transport charged is slept off -- timing only; the bytes and merges are
untouched.

Per-shard ``asyncio.Lock`` objects serialize concurrent sessions touching
the same (replica, shard); they are created lazily *inside* the running
loop (Python 3.9 binds primitives to the loop at construction time).
"""

from __future__ import annotations

import asyncio
import random
from typing import List, Optional

from ..core.errors import SessionTimeout
from ..replication.degradation import DegradationState
from ..replication.node import MobileNode
from ..replication.store import MergeReport
from ..replication.synchronizer import (
    SessionAbort,
    SleepEffect,
    TransferEffect,
    WireSyncEngine,
)
from .links import LinkProfile

__all__ = ["ReplicaDaemon"]


class ReplicaDaemon:
    """One replica's daemon: a mobile node plus its per-shard locks."""

    __slots__ = ("node", "index", "_locks", "_locks_loop", "checker")

    def __init__(self, node: MobileNode, index: int, *, checker=None) -> None:
        self.node = node
        self.index = index
        self._locks: Optional[List[asyncio.Lock]] = None
        self._locks_loop: Optional[asyncio.AbstractEventLoop] = None
        #: Optional :class:`~repro.contracts.ContractChecker` (duck-typed:
        #: anything with ``scan()``) evaluated right after every session
        #: this daemon initiates -- per-session contract granularity, so a
        #: violation is pinned to the exchange that failed to cure it.
        self.checker = checker

    def lock(self, shard: int) -> asyncio.Lock:
        """The lock guarding ``shard`` of this replica (created in-loop)."""
        if self._locks is None:
            raise RuntimeError("locks not initialised; call ensure_locks first")
        return self._locks[shard]

    def ensure_locks(self, shard_count: int) -> None:
        """Create the per-shard locks; must run inside the event loop.

        Locks are rebuilt whenever the running loop changed: every
        :meth:`~repro.service.cluster.AntiEntropyService.run` starts a
        fresh virtual-time loop, and asyncio primitives stay bound to the
        loop they were first awaited on.  No session is ever in flight
        between runs, so replacing the locks is safe.
        """
        loop = asyncio.get_running_loop()
        if (
            self._locks is None
            or len(self._locks) != shard_count
            or self._locks_loop is not loop
        ):
            self._locks = [asyncio.Lock() for _ in range(shard_count)]
            self._locks_loop = loop

    async def drive_session(
        self,
        peer: "ReplicaDaemon",
        engine: WireSyncEngine,
        *,
        keys: Optional[List[str]] = None,
        link: LinkProfile,
        link_rng: random.Random,
        deadline: Optional[float] = None,
        degradation: Optional[DegradationState] = None,
    ) -> MergeReport:
        """Run one anti-entropy session with ``peer`` on the virtual clock.

        ``deadline`` bounds the session's *virtual* duration: when the
        next wait would cross it, the remainder is slept (so the timeout
        itself costs honest virtual time), the session generator is
        aborted -- rolling both replicas back -- and
        :class:`~repro.core.errors.SessionTimeout` is raised.
        ``degradation`` applies grey shaping to every transfer leg and
        sleeps off stuck-session hangs charged by the transport.
        """
        session = engine.session(
            self.node.store,
            peer.node.store,
            keys=keys,
            abortable=deadline is not None,
        )
        meter = engine.meter
        loop = asyncio.get_running_loop()
        transport = engine.transport if degradation is not None else None
        start = loop.time()
        while True:
            try:
                effect = next(session)
            except StopIteration as stop:
                if self.checker is not None:
                    self.checker.scan()
                return stop.value
            if type(effect) is TransferEffect:
                now = loop.time()
                delay = link.leg_delay(effect.nbytes, link_rng, now=now)
                if degradation is not None:
                    delay = degradation.shape_leg(
                        effect.source, effect.destination, delay, now=now
                    )
                if transport is not None:
                    # A stuck-session hang: the transport already dropped
                    # the leg's deliveries; the daemon pays the hang time.
                    delay += transport.take_pending_hang()
                meter.record_transfer_latency(delay)
                wait = delay
            elif type(effect) is SleepEffect:
                wait = effect.seconds
            else:
                wait = 0.0
            if deadline is not None:
                remaining = deadline - (loop.time() - start)
                if wait >= remaining:
                    # The deadline lands inside this wait: spend what is
                    # left of the budget, then cancel the session.  The
                    # generator restores both replicas before the abort
                    # propagates, so a timed-out session never
                    # half-merges.
                    if remaining > 0:
                        await asyncio.sleep(remaining)
                    try:
                        session.throw(SessionAbort())
                    except (SessionAbort, StopIteration):
                        pass
                    raise SessionTimeout(
                        self.node.node_id,
                        peer.node.node_id,
                        deadline,
                        loop.time() - start,
                    )
            if wait > 0:
                await asyncio.sleep(wait)
