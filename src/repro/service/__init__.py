"""Datacenter-scale asynchronous anti-entropy on simulated time.

This package turns the pairwise wire sync engine into a *service*: an
asyncio replica daemon per simulated node, gossiping the existing batched
``"CS"`` stream format over a discrete-event network model (configurable
latency, bandwidth, jitter, loss and partitions) on a virtual clock -- no
real sleeping -- so one machine drives 10^4-10^6 replicas to convergence.

* :mod:`~repro.service.engine`   -- :class:`AsyncWireSyncEngine`, the wire
  engine with incremental (chunked) stream decode;
* :mod:`~repro.service.links`    -- :class:`LinkProfile` virtual-time link
  costing;
* :mod:`~repro.service.sharding` -- :class:`KeyShards` key-range sharding
  and the shared :func:`shard_keys` helper;
* :mod:`~repro.service.daemon`   -- :class:`ReplicaDaemon`, one node's
  async session driver (with deadline enforcement and grey shaping);
* :mod:`~repro.service.health`   -- the grey-failure resilience layer:
  :class:`HealthMonitor` accrual failure detection, adaptive per-peer
  deadlines, :class:`CircuitBreaker` gating and the health-weighted
  gossip draw;
* :mod:`~repro.service.cluster`  -- :class:`AntiEntropyService` (lockstep
  and overlap modes), schedules, the synchronous reference executor and
  the :func:`build_cluster` population builder.

The service's lockstep mode is proven byte-identical to the synchronous
:class:`~repro.replication.synchronizer.WireSyncEngine` on identical
schedules -- see ``tests/service/``.
"""

from .cluster import (
    AntiEntropyService,
    RoundMetrics,
    ServiceReport,
    build_cluster,
    gossip_schedule,
    replay_schedule_sync,
)
from .daemon import ReplicaDaemon
from .engine import AsyncWireSyncEngine
from .health import CircuitBreaker, HealthConfig, HealthMonitor, PeerHealth
from .links import LinkProfile
from .sharding import KeyShards, shard_keys

__all__ = [
    "AntiEntropyService",
    "AsyncWireSyncEngine",
    "CircuitBreaker",
    "HealthConfig",
    "HealthMonitor",
    "KeyShards",
    "LinkProfile",
    "PeerHealth",
    "ReplicaDaemon",
    "RoundMetrics",
    "ServiceReport",
    "build_cluster",
    "gossip_schedule",
    "replay_schedule_sync",
    "shard_keys",
]
