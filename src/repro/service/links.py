"""Link timing model for the simulated datacenter network.

:class:`LinkProfile` turns one transfer leg (N messages, B bytes) into a
virtual-time delay: propagation latency (optionally jittered) plus
serialization time at the configured bandwidth, optionally stretched by
scheduled bandwidth-throttling windows (a congestion event pinned to the
virtual clock).  Jitter draws come from a *dedicated* RNG owned by the
service -- never from the transport's fault RNG -- so enabling or tuning
link timing cannot shift the fault schedule relative to the synchronous
reference path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["LinkProfile"]


@dataclass(frozen=True)
class LinkProfile:
    """Virtual-time cost model of one network link.

    Parameters
    ----------
    latency:
        One-way propagation delay per transfer leg, in virtual seconds.
    bandwidth:
        Link bandwidth in bytes per virtual second; ``None`` means
        infinite (no serialization delay).
    jitter:
        Fractional uniform jitter on the latency term: the delay is
        scaled by ``1 + jitter * u`` with ``u ~ U[0, 1)``.
    throttles:
        Scheduled bandwidth-throttling windows ``(start, end, divisor)``
        in virtual seconds: while ``start <= now < end`` the effective
        bandwidth is divided by ``divisor`` (the serialization term grows
        accordingly).  Callers that know the virtual clock pass ``now``
        to :meth:`leg_delay`; without it the windows are ignored, which
        keeps the profile usable by clock-less drivers.
    """

    latency: float = 0.0
    bandwidth: Optional[float] = None
    jitter: float = 0.0
    throttles: Tuple[Tuple[float, float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        for window in self.throttles:
            if len(window) != 3 or window[0] < 0 or window[1] <= window[0]:
                raise ValueError(
                    f"throttle windows are (start, end, divisor) with "
                    f"0 <= start < end, got {window!r}"
                )
            if window[2] < 1.0:
                raise ValueError(
                    f"a throttle divisor must be >= 1, got {window[2]}"
                )

    def throttle_divisor(self, now: float) -> float:
        """The bandwidth divisor in force at virtual time ``now``."""
        divisor = 1.0
        for start, end, window_divisor in self.throttles:
            if start <= now < end:
                divisor *= window_divisor
        return divisor

    def leg_delay(
        self, nbytes: int, rng: random.Random, *, now: Optional[float] = None
    ) -> float:
        """Virtual seconds one transfer leg of ``nbytes`` occupies the wire."""
        delay = self.latency
        if self.jitter and self.latency:
            delay *= 1.0 + self.jitter * rng.random()
        if self.bandwidth is not None:
            bandwidth = self.bandwidth
            if now is not None and self.throttles:
                bandwidth /= self.throttle_divisor(now)
            delay += nbytes / bandwidth
        return delay
