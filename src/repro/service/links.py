"""Link timing model for the simulated datacenter network.

:class:`LinkProfile` turns one transfer leg (N messages, B bytes) into a
virtual-time delay: propagation latency (optionally jittered) plus
serialization time at the configured bandwidth.  Jitter draws come from a
*dedicated* RNG owned by the service -- never from the transport's fault
RNG -- so enabling or tuning link timing cannot shift the fault schedule
relative to the synchronous reference path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["LinkProfile"]


@dataclass(frozen=True)
class LinkProfile:
    """Virtual-time cost model of one network link.

    Parameters
    ----------
    latency:
        One-way propagation delay per transfer leg, in virtual seconds.
    bandwidth:
        Link bandwidth in bytes per virtual second; ``None`` means
        infinite (no serialization delay).
    jitter:
        Fractional uniform jitter on the latency term: the delay is
        scaled by ``1 + jitter * u`` with ``u ~ U[0, 1)``.
    """

    latency: float = 0.0
    bandwidth: Optional[float] = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def leg_delay(self, nbytes: int, rng: random.Random) -> float:
        """Virtual seconds one transfer leg of ``nbytes`` occupies the wire."""
        delay = self.latency
        if self.jitter and self.latency:
            delay *= 1.0 + self.jitter * rng.random()
        if self.bandwidth is not None:
            delay += nbytes / self.bandwidth
        return delay
