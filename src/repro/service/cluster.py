"""The datacenter-scale anti-entropy service.

:class:`AntiEntropyService` drives gossip rounds over thousands to a
million simulated replicas on one machine: every replica is a
:class:`~repro.service.daemon.ReplicaDaemon` on a
:class:`~repro.sim.scheduler.VirtualTimeLoop`, sessions execute the
engine's sans-io generator, and virtual time -- not wall time -- advances
through link latency, bandwidth and retry backoff.

Two execution modes:

* **lockstep** -- sessions (and shard parts within a session) run strictly
  sequentially in schedule order.  Because the sans-io generator performs
  every state mutation, RNG draw and meter update itself, this mode is
  *byte-identical* to :func:`replay_schedule_sync` driving the synchronous
  engine over the same schedule, under the full fault matrix.  That is the
  equivalence proof the scale results stand on.
* **overlap** (default) -- one asyncio task per (session, shard part),
  serialized only by per-(replica, shard) locks acquired in ascending
  replica order (deadlock-free; shards share no key state, so cross-shard
  parts never contend).  Deterministic for a fixed seed, and
  convergence-equivalent to lockstep; round wall-clock in virtual time
  becomes the *longest dependency chain*, not the sum of all sessions --
  which is what "anti-entropy rounds parallelize across shards" means.

Peer selection is O(1) per replica per round (a draw from the replica's
connectivity group), never an O(N) reachability scan per node, so a round
over 10^4-10^6 replicas costs O(N), not O(N^2).
"""

from __future__ import annotations

import asyncio
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import SessionTimeout
from ..replication.degradation import DegradationState
from ..replication.network import FullyConnectedNetwork, NetworkMeter, SimulatedNetwork
from ..replication.node import MobileNode
from ..replication.store import MergeReport
from ..replication.synchronizer import WireSyncEngine
from ..replication.tracker import KernelTracker
from ..sim.scheduler import run_virtual, virtual_time
from .daemon import ReplicaDaemon
from .engine import AsyncWireSyncEngine
from .health import HealthConfig, HealthMonitor
from .links import LinkProfile
from .sharding import KeyShards, shard_keys

__all__ = [
    "AntiEntropyService",
    "RoundMetrics",
    "ServiceReport",
    "build_cluster",
    "gossip_schedule",
    "replay_schedule_sync",
]

#: One gossip round: (initiator index, peer index) session pairs, in order.
SyncSchedule = List[List[Tuple[int, int]]]


@dataclass
class RoundMetrics:
    """What one service round did, in counters and virtual time."""

    number: int
    #: Sessions that actually ran (initiator could reach its peer).
    exchanges: int = 0
    #: Sessions skipped because the pair was partitioned or crashed.
    skipped: int = 0
    #: Shard parts skipped because the shard spanned no keys for the pair.
    empty_parts: int = 0
    #: Merge outcome folded over every session of the round.
    merge: MergeReport = field(default_factory=MergeReport)
    #: Transport messages / payload bytes attributed to this round.
    messages: int = 0
    bytes_sent: int = 0
    #: Virtual seconds the round occupied (longest chain in overlap mode).
    virtual_duration: float = 0.0
    #: Whether the cluster was fully converged after this round.
    converged: bool = False
    #: Sessions aborted at their adaptive deadline (health layer on).
    timeouts: int = 0
    #: Sessions refused by an open per-peer circuit breaker.
    breaker_skips: int = 0
    #: Hedged (backup-peer) sessions launched after a primary timeout.
    hedges: int = 0


def _percentiles(
    samples: Sequence[float], quantiles: Sequence[float]
) -> Dict[float, float]:
    """Nearest-rank percentiles (deterministic; zeros when empty)."""
    ordered = sorted(samples)
    if not ordered:
        return {q: 0.0 for q in quantiles}
    last = len(ordered) - 1
    return {
        q: ordered[min(last, max(0, math.ceil(q * len(ordered)) - 1))]
        for q in quantiles
    }


@dataclass
class ServiceReport:
    """Summary of one :meth:`AntiEntropyService.run` invocation."""

    replicas: int
    shards: int
    rounds: List[RoundMetrics]
    #: First round after which the cluster was converged (None: never).
    converged_after: Optional[int]
    #: Total virtual seconds the run took on the simulated clock.
    virtual_seconds: float
    meter: NetworkMeter
    #: Aggregate health counters (``HealthMonitor.counters()``) captured
    #: when the run finished; ``None`` when the health layer was off.
    health: Optional[Dict[str, int]] = None

    @property
    def total_exchanges(self) -> int:
        return sum(r.exchanges for r in self.rounds)

    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self.rounds)

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes_sent for r in self.rounds)

    @property
    def total_timeouts(self) -> int:
        return sum(r.timeouts for r in self.rounds)

    @property
    def total_breaker_skips(self) -> int:
        return sum(r.breaker_skips for r in self.rounds)

    @property
    def total_hedges(self) -> int:
        return sum(r.hedges for r in self.rounds)

    def bytes_per_key(self, key_count: int) -> float:
        """Payload bytes spent per logical key over the whole run."""
        return self.total_bytes / max(1, key_count)

    def bytes_per_key_per_replica(self, key_count: int) -> float:
        """Payload bytes per key per replica -- the scale-honest cost."""
        return self.total_bytes / (max(1, key_count) * max(1, self.replicas))

    def round_duration_percentiles(
        self, quantiles: Sequence[float] = (0.5, 0.9, 0.99)
    ) -> Dict[float, float]:
        """Nearest-rank percentiles of per-round virtual durations."""
        return _percentiles([r.virtual_duration for r in self.rounds], quantiles)

    def session_latency_percentiles(
        self, quantiles: Sequence[float] = (0.5, 0.9, 0.99)
    ) -> Dict[float, float]:
        """Tail latency of individual transfer legs, from the meter."""
        return self.meter.latency_percentiles(quantiles)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-serializable view of the whole run (``--json`` output).

        Everything a dashboard or regression script needs: totals, the
        fault economy, per-round counters, tail percentiles and -- when
        the health layer ran -- its aggregate counters.
        """
        meter = self.meter
        return {
            "replicas": self.replicas,
            "shards": self.shards,
            "converged_after": self.converged_after,
            "virtual_seconds": self.virtual_seconds,
            "totals": {
                "exchanges": self.total_exchanges,
                "messages": self.total_messages,
                "bytes_sent": self.total_bytes,
                "timeouts": self.total_timeouts,
                "breaker_skips": self.total_breaker_skips,
                "hedges": self.total_hedges,
            },
            "faults": {
                "dropped": meter.dropped,
                "duplicated": meter.duplicated,
                "retried": meter.retried,
                "corrupted": meter.corrupted,
                "retry_latency": meter.retry_latency,
            },
            "round_duration_percentiles": {
                str(q): v for q, v in self.round_duration_percentiles().items()
            },
            "session_latency_percentiles": {
                str(q): v for q, v in self.session_latency_percentiles().items()
            },
            "health": self.health,
            "rounds": [
                {
                    "number": r.number,
                    "exchanges": r.exchanges,
                    "skipped": r.skipped,
                    "timeouts": r.timeouts,
                    "breaker_skips": r.breaker_skips,
                    "hedges": r.hedges,
                    "messages": r.messages,
                    "bytes_sent": r.bytes_sent,
                    "virtual_duration": r.virtual_duration,
                    "converged": r.converged,
                }
                for r in self.rounds
            ],
        }


def gossip_schedule(replicas: int, rounds: int, *, seed: int = 0) -> SyncSchedule:
    """A seeded random-peer gossip schedule over ``replicas`` indices.

    Every round shuffles the initiator order and draws one uniform peer
    per initiator (O(1) per replica).  The same schedule can be fed to
    both :meth:`AntiEntropyService.run` and :func:`replay_schedule_sync`,
    which is how the lockstep-equality tests pin the two paths together.
    """
    if replicas < 2:
        raise ValueError(f"need at least two replicas, got {replicas}")
    rng = random.Random(seed)
    schedule: SyncSchedule = []
    for _ in range(rounds):
        order = list(range(replicas))
        rng.shuffle(order)
        row: List[Tuple[int, int]] = []
        for initiator in order:
            peer = rng.randrange(replicas)
            while peer == initiator:
                peer = rng.randrange(replicas)
            row.append((initiator, peer))
        schedule.append(row)
    return schedule


def replay_schedule_sync(
    nodes: Sequence[MobileNode],
    schedule: SyncSchedule,
    engine: WireSyncEngine,
    *,
    shards: int = 1,
    advance_network: bool = True,
) -> MergeReport:
    """Execute ``schedule`` with the synchronous engine driver.

    This is the reference the async service's lockstep mode is proven
    equal to: same sessions, same order, same per-shard key restriction
    (via the shared :func:`~repro.service.sharding.shard_keys` helper),
    so every transport call and RNG draw lines up one-for-one.
    """
    shard_map = KeyShards(shards)
    merged = MergeReport()
    for row in schedule:
        for initiator, peer in row:
            first, second = nodes[initiator], nodes[peer]
            if not first.can_reach(second):
                continue
            for shard in range(shard_map.count):
                part = shard_keys(first.store, second.store, shard_map, shard)
                if part is not None and not part:
                    continue
                merged += engine.sync(first.store, second.store, keys=part)
        if advance_network and nodes:
            nodes[0].network.advance()
    return merged


def build_cluster(
    replicas: int,
    *,
    keys: int = 4,
    family: str = "version-stamp",
    seed: int = 0,
    network: Optional[SimulatedNetwork] = None,
    writes_per_key: int = 1,
) -> Tuple[List[MobileNode], List[str]]:
    """Build a seeded population of replicas with divergent initial writes.

    The first node seeds the system; every further replica forks the
    previous one (coordination-free, so this works for all clock
    families).  Each key then receives ``writes_per_key`` writes at
    replicas drawn from a seeded RNG, giving the cluster something to
    converge *from*.  Returns ``(nodes, key_names)``.
    """
    if replicas < 1:
        raise ValueError(f"need at least one replica, got {replicas}")
    if network is None:
        network = FullyConnectedNetwork()
    nodes = [
        MobileNode.first("n0", network, tracker_factory=KernelTracker.factory(family))
    ]
    for index in range(1, replicas):
        nodes.append(nodes[-1].spawn_peer(f"n{index}"))
    rng = random.Random(seed)
    names = [f"key{index}" for index in range(keys)]
    for name in names:
        for write in range(writes_per_key):
            author = nodes[rng.randrange(len(nodes))]
            author.write(name, f"{name}@{author.node_id}#{write}")
    return nodes, names


class AntiEntropyService:
    """Asyncio anti-entropy over a population of replica daemons.

    Parameters
    ----------
    nodes:
        The replica population (see :func:`build_cluster`).
    engine:
        The wire engine shared by every session; defaults to a fresh
        :class:`~repro.service.engine.AsyncWireSyncEngine` (incremental
        stream decode).  Give it a
        :class:`~repro.replication.faults.FaultyTransport` to gossip over
        a lossy fabric.
    shards:
        Worker shards the key space is split into; shard parts of one
        session run independently (and concurrently in overlap mode).
    link:
        The :class:`~repro.service.links.LinkProfile` costing transfer
        legs in virtual time.
    seed:
        Seeds both the default gossip schedule and the link-jitter RNG
        (the latter is separate from the transport's fault RNG by
        construction, so link timing never perturbs fault schedules).
    lockstep:
        ``True`` serializes sessions in schedule order -- the mode that
        is byte-identical to the synchronous reference.  ``False``
        (default) overlaps sessions under per-(replica, shard) locks.
    checker:
        Optional :class:`~repro.contracts.ContractChecker` (duck-typed:
        anything with ``scan()``).  Every daemon scans it after each
        session it initiates, and the service scans once more at the end
        of every round -- contracts are enforced inline with gossip.
    health:
        Enables the grey-failure resilience layer: pass ``True`` for the
        default :class:`~repro.service.health.HealthConfig` or a config
        instance to tune it.  The service then derives adaptive per-peer
        session deadlines from observed latencies, aborts sessions that
        cross them (transactionally -- a timed-out session never
        half-merges), gates peers behind per-peer circuit breakers and
        weights the gossip draw by accrued suspicion.  The monitor's RNG
        is seeded from ``seed`` XOR a salt -- a stream of its own, so on
        a healthy cluster the detector on vs. off is byte-identical.
    hedge:
        With the health layer on, launch a backup session against the
        healthiest other peer whenever a primary session times out.
        Sound because pairwise syncs are idempotent (canonical bytes
        make duplicate deliveries EQUAL-skips) and aborted sessions roll
        back fully -- hedging can only add convergence, never diverge.
    """

    def __init__(
        self,
        nodes: Sequence[MobileNode],
        *,
        engine: Optional[WireSyncEngine] = None,
        shards: int = 1,
        link: Optional[LinkProfile] = None,
        seed: int = 0,
        lockstep: bool = False,
        checker=None,
        health=None,
        hedge: bool = False,
    ) -> None:
        self.checker = checker
        self.daemons = [
            ReplicaDaemon(node, index, checker=checker)
            for index, node in enumerate(nodes)
        ]
        self.engine = engine if engine is not None else AsyncWireSyncEngine()
        self.shards = KeyShards(shards)
        self.link = link if link is not None else LinkProfile()
        self.lockstep = lockstep
        self._rng = random.Random(seed)
        self._link_rng = random.Random(seed ^ 0x11A7C0DE)
        if health:
            config = health if isinstance(health, HealthConfig) else None
            self.health: Optional[HealthMonitor] = HealthMonitor(
                config=config, seed=seed
            )
        else:
            self.health = None
        self.hedge = bool(hedge) and self.health is not None
        #: The transport's grey modes resolved over this population
        #: (``None`` without a transport or degradation plan).
        transport = self.engine.transport
        self.degradation: Optional[DegradationState] = (
            transport.ensure_degradation(
                [daemon.node.node_id for daemon in self.daemons]
            )
            if transport is not None
            else None
        )
        #: Metrics of every round ever run through this service.
        self.rounds: List[RoundMetrics] = []

    @property
    def network(self) -> Optional[SimulatedNetwork]:
        return self.daemons[0].node.network if self.daemons else None

    @property
    def meter(self) -> NetworkMeter:
        return self.engine.meter

    # -- convergence -------------------------------------------------------

    def converged(self, keys: Optional[Iterable[str]] = None) -> bool:
        """True when every live replica holds the same siblings everywhere."""
        live = [daemon.node for daemon in self.daemons if daemon.node.alive]
        if not live:
            return True
        if keys is None:
            spanned = set()
            for node in live:
                spanned |= set(node.store.keys())
            keys = spanned
        for key in sorted(keys):
            reference = None
            for node in live:
                values = sorted(repr(value) for value in node.store.get(key))
                if reference is None:
                    reference = values
                elif values != reference:
                    return False
        return True

    # -- scheduling --------------------------------------------------------

    def _peer_groups(self, live: List[int]) -> Dict[int, List[int]]:
        """Connectivity groups as sorted index lists (O(N) when healthy)."""
        transport = self.engine.transport
        network = self.network

        def uncrashed(indices: Iterable[int]) -> List[int]:
            if transport is None:
                return list(indices)
            return [
                index
                for index in indices
                if not transport.is_crashed(self.daemons[index].node.node_id)
            ]

        if type(network) is FullyConnectedNetwork:
            members = uncrashed(live)
            return {index: members for index in members}
        index_of = {self.daemons[index].node.node_id: index for index in live}
        groups: Dict[int, List[int]] = {}
        for component in network.partitions(list(index_of)):
            members = uncrashed(
                sorted(index_of[node_id] for node_id in component if node_id in index_of)
            )
            for member in members:
                groups[member] = members
        return groups

    def _schedule_round(self) -> List[Tuple[int, int]]:
        """One seeded gossip round: each live replica picks one peer, O(1)."""
        live = [daemon.index for daemon in self.daemons if daemon.node.alive]
        if len(live) < 2:
            return []
        groups = self._peer_groups(live)
        order = list(live)
        self._rng.shuffle(order)
        pairs: List[Tuple[int, int]] = []
        for initiator in order:
            members = groups.get(initiator)
            if members is None or len(members) < 2:
                continue
            peer = members[self._rng.randrange(len(members))]
            while peer == initiator:
                peer = members[self._rng.randrange(len(members))]
            if self.health is not None:
                # Health-weighted accept/reject on top of the uniform
                # draw: the schedule RNG's consumption is identical with
                # the monitor on or off (redraws come from the monitor's
                # own stream, and quiet peers skip it entirely).
                peer = self.health.select(members, initiator, peer)
            pairs.append((initiator, peer))
        return pairs

    # -- execution ---------------------------------------------------------

    async def _run_part(
        self,
        first: ReplicaDaemon,
        second: ReplicaDaemon,
        shard: int,
        deadline: Optional[float] = None,
    ) -> Optional[MergeReport]:
        part = shard_keys(first.node.store, second.node.store, self.shards, shard)
        if part is not None and not part:
            return None
        start = virtual_time()
        report = await first.drive_session(
            second,
            self.engine,
            keys=part,
            link=self.link,
            link_rng=self._link_rng,
            deadline=deadline,
            degradation=self.degradation,
        )
        if self.health is not None:
            # Observed here -- with the locks already held -- so the
            # latency fed to the accrual model is the peer's wire time,
            # not local lock-queueing delay (which would make a busy but
            # healthy cluster look grey).
            self.health.observe_success(second.index, virtual_time() - start)
        return report

    async def _run_part_locked(
        self,
        first: ReplicaDaemon,
        second: ReplicaDaemon,
        shard: int,
        deadline: Optional[float] = None,
    ) -> Optional[MergeReport]:
        low, high = (first, second) if first.index < second.index else (second, first)
        async with low.lock(shard):
            async with high.lock(shard):
                return await self._run_part(first, second, shard, deadline)

    async def _run_hedge(
        self,
        first: ReplicaDaemon,
        primary: ReplicaDaemon,
        shard: int,
        metrics: RoundMetrics,
    ) -> Optional[MergeReport]:
        """Launch one backup session after a primary timeout.

        Runs strictly *after* the timed-out session released its locks
        (lock acquisition stays in ascending replica order, so hedging
        cannot deadlock the overlap mode).  The backup peer is the
        healthiest reachable alternative; soundness rests on sync
        idempotence -- a hedge can only move knowledge, never diverge.
        """
        health = self.health
        candidates = [
            daemon.index
            for daemon in self.daemons
            if daemon.node.alive and first.node.can_reach(daemon.node)
        ]
        backup_index = health.hedge_candidate(
            candidates, (first.index, primary.index)
        )
        if backup_index is None:
            return None
        health.hedges += 1
        metrics.hedges += 1
        backup = self.daemons[backup_index]
        deadline = health.deadline(backup_index)
        runner = self._run_part if self.lockstep else self._run_part_locked
        try:
            report = await runner(first, backup, shard, deadline)
        except SessionTimeout:
            metrics.timeouts += 1
            health.observe_timeout(backup_index, virtual_time())
            return None
        if report is None:
            metrics.empty_parts += 1
        else:
            health.hedge_wins += 1
        return report

    async def _run_job(
        self,
        first: ReplicaDaemon,
        second: ReplicaDaemon,
        shard: int,
        metrics: RoundMetrics,
    ) -> Optional[MergeReport]:
        """One (pair, shard) part under the defensive-driving policy.

        Without the health layer this is exactly the old direct call.
        With it: the peer's circuit gates the session, its adaptive
        deadline bounds it, a timeout feeds the accrual detector and --
        when hedging is on -- triggers one backup session against the
        healthiest other peer.
        """
        health = self.health
        runner = self._run_part if self.lockstep else self._run_part_locked
        if health is None:
            report = await runner(first, second, shard)
            if report is None:
                metrics.empty_parts += 1
            return report
        if not health.allow(second.index, virtual_time()):
            metrics.breaker_skips += 1
            return None
        deadline = health.deadline(second.index)
        try:
            report = await runner(first, second, shard, deadline)
        except SessionTimeout:
            metrics.timeouts += 1
            health.observe_timeout(second.index, virtual_time())
            if self.hedge:
                return await self._run_hedge(first, second, shard, metrics)
            return None
        if report is None:
            metrics.empty_parts += 1
        return report

    async def _run_round(
        self, number: int, pairs: Sequence[Tuple[int, int]]
    ) -> RoundMetrics:
        loop = asyncio.get_running_loop()
        metrics = RoundMetrics(number=number)
        if self.engine.history is not None:
            self.engine.history.mark_round(number)
        start = loop.time()
        before_messages, before_bytes = self.meter.snapshot()
        jobs: List[Tuple[ReplicaDaemon, ReplicaDaemon, int]] = []
        for initiator, peer in pairs:
            first, second = self.daemons[initiator], self.daemons[peer]
            if not first.node.can_reach(second.node):
                metrics.skipped += 1
                continue
            metrics.exchanges += 1
            for shard in range(self.shards.count):
                jobs.append((first, second, shard))
        if self.lockstep:
            results: List[Optional[MergeReport]] = []
            for first, second, shard in jobs:
                results.append(await self._run_job(first, second, shard, metrics))
        else:
            tasks = [
                loop.create_task(self._run_job(first, second, shard, metrics))
                for first, second, shard in jobs
            ]
            results = [await task for task in tasks]
        for report in results:
            if report is not None:
                metrics.merge += report
        if self.health is not None:
            self.health.decay_round()
        after_messages, after_bytes = self.meter.snapshot()
        metrics.messages = after_messages - before_messages
        metrics.bytes_sent = after_bytes - before_bytes
        metrics.virtual_duration = loop.time() - start
        return metrics

    def run(
        self,
        *,
        max_rounds: Optional[int] = None,
        schedule: Optional[SyncSchedule] = None,
        until_converged: bool = True,
        advance_network: bool = True,
        on_round: Optional[Callable[[RoundMetrics], None]] = None,
    ) -> ServiceReport:
        """Run gossip rounds on a fresh virtual-time loop.

        Either pass an explicit ``schedule`` (its length bounds the run)
        or ``max_rounds`` to gossip on the service's seeded internal
        schedule.  ``on_round`` fires after every round with its
        :class:`RoundMetrics` -- the hook the lockstep tests use to
        compare state digests round by round.
        """
        if schedule is None and max_rounds is None:
            raise ValueError("pass either schedule or max_rounds")
        total = len(schedule) if schedule is not None else max_rounds
        run_rounds: List[RoundMetrics] = []

        async def main() -> Optional[int]:
            for daemon in self.daemons:
                daemon.ensure_locks(self.shards.count)
            converged_after: Optional[int] = None
            for offset in range(total):
                pairs = (
                    list(schedule[offset])
                    if schedule is not None
                    else self._schedule_round()
                )
                metrics = await self._run_round(len(self.rounds) + 1, pairs)
                if self.checker is not None:
                    self.checker.scan()
                metrics.converged = self.converged()
                if metrics.converged and converged_after is None:
                    converged_after = metrics.number
                run_rounds.append(metrics)
                self.rounds.append(metrics)
                if on_round is not None:
                    on_round(metrics)
                if advance_network and self.network is not None:
                    self.network.advance()
                if until_converged and metrics.converged:
                    break
            return converged_after

        converged_after, virtual_seconds = run_virtual(main())
        return ServiceReport(
            replicas=len(self.daemons),
            shards=self.shards.count,
            rounds=run_rounds,
            converged_after=converged_after,
            virtual_seconds=virtual_seconds,
            meter=self.meter,
            health=self.health.counters() if self.health is not None else None,
        )
