"""Accrual failure detection and health-aware routing for the service.

At datacenter scale the failure mode that dominates is not the crashed
replica (the transport already models that) but the **grey** one: alive,
reachable, and 10-100x slow.  One such node inflates every gossip round
that touches it, because sessions have no deadline and peers are drawn
uniformly.  This module is the detection half of the grey-failure
resilience layer:

* :class:`PeerHealth` -- a per-peer latency history with a
  phi-accrual-style suspicion score: each observed session latency is
  scored by how improbable it is under a normal model of the peer's own
  history (``phi = -log10(survival probability)``), so suspicion *accrues*
  with evidence instead of tripping a binary timeout.  The same history
  yields the peer's **adaptive deadline** (mean plus a few standard
  deviations, clamped) -- slow-but-steady peers earn long deadlines,
  fast peers are cut off quickly when they stall.
* :class:`CircuitBreaker` -- the classic closed / open / half-open
  automaton on the *virtual* clock: enough consecutive timeouts open the
  circuit, a cool-down later one probe session is allowed through, and a
  success snaps the circuit closed again.
* :class:`HealthMonitor` -- the service-wide registry tying the pieces
  together: suspicion-decayed peer weights for the health-aware gossip
  draw (suspected peers are drawn with decaying probability but **never
  zero**, so a suspected-but-healthy partition still converges and the
  epoch straggler-upgrade path still fires), hedge-peer selection, and
  the counters the service report and ``--health-table`` surface.

Determinism: everything runs on virtual time and the monitor owns a
dedicated seeded RNG (:data:`HEALTH_SEED_SALT` XORed into the service
seed) used *only* for the rejection-sampling step of the weighted draw.
The fast path -- every candidate at weight 1.0 -- consumes **no** health
RNG at all, so on a healthy cluster the detector being on or off yields
byte-identical gossip schedules, fault schedules and merges; the
isolation tests pin this down.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "HealthConfig",
    "PeerHealth",
    "CircuitBreaker",
    "HealthMonitor",
    "HEALTH_SEED_SALT",
]

#: XORed into the service seed to derive the health RNG stream, keeping
#: it disjoint from the schedule RNG (raw seed), the link-jitter RNG and
#: the transport's fault RNG.
HEALTH_SEED_SALT = 0x48EA17F1


@dataclass(frozen=True)
class HealthConfig:
    """Tuning knobs of the accrual detector, breaker and weighted draw.

    The defaults are deliberately conservative: a healthy cluster under
    moderate fault-injected retry noise should never trip a deadline or
    leave the weight-1.0 fast path, so enabling health monitoring is
    observation-only until something is genuinely degraded.
    """

    #: Latency samples kept per peer (the accrual model's window).
    window: int = 20
    #: Observations required before phi scoring and adaptive deadlines
    #: activate; until then the deadline is :attr:`max_deadline`.
    min_samples: int = 5
    #: Suspicion added per session timeout (on top of accrued phi).
    timeout_suspicion: float = 3.0
    #: Per-round multiplicative suspicion decay -- how fast a recovered
    #: peer is forgiven.
    decay: float = 0.7
    #: Suspicion at or below this keeps the peer's weight at exactly 1.0
    #: (the no-RNG fast path of the weighted draw).
    quiet_suspicion: float = 1.0
    #: Floor of the draw weight: a suspected peer is drawn with decaying
    #: probability but never zero.
    min_weight: float = 0.05
    #: Bound on rejection-sampling redraws per selection.
    max_redraws: int = 8
    #: Adaptive deadline = clamp(mean + deadline_sigmas * std, ...).
    deadline_sigmas: float = 4.0
    min_deadline: float = 1e-3
    max_deadline: float = 120.0
    #: Consecutive timeouts that open a peer's circuit.
    breaker_failures: int = 3
    #: Virtual seconds an open circuit waits before its half-open probe.
    breaker_cooldown: float = 5.0
    #: Cooldown multiplier applied every time a probe fails.
    breaker_backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.window < 2 or self.min_samples < 2:
            raise ValueError("window and min_samples must be at least 2")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")
        if not 0.0 < self.min_weight <= 1.0:
            raise ValueError(
                f"min_weight must be in (0, 1], got {self.min_weight}"
            )
        if self.min_deadline <= 0 or self.max_deadline < self.min_deadline:
            raise ValueError("need 0 < min_deadline <= max_deadline")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be at least 1")
        if self.breaker_cooldown <= 0 or self.breaker_backoff < 1.0:
            raise ValueError("need breaker_cooldown > 0 and backoff >= 1")


class CircuitBreaker:
    """Closed / open / half-open session gating on the virtual clock."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    __slots__ = ("config", "state", "failures", "cooldown", "open_until", "probing", "opens")

    def __init__(self, config: HealthConfig) -> None:
        self.config = config
        self.state = self.CLOSED
        #: Consecutive failures while closed.
        self.failures = 0
        self.cooldown = config.breaker_cooldown
        self.open_until = 0.0
        #: Whether the half-open probe session is currently in flight.
        self.probing = False
        #: Times this circuit has transitioned closed -> open.
        self.opens = 0

    def allow(self, now: float) -> bool:
        """Whether a session may start at virtual ``now``.

        An open circuit whose cool-down has elapsed transitions to
        half-open and admits exactly one probe; further sessions are
        refused until the probe reports back.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now >= self.open_until:
                self.state = self.HALF_OPEN
                self.probing = True
                return True
            return False
        if not self.probing:
            self.probing = True
            return True
        return False

    def record_success(self) -> None:
        """A session completed: snap closed and forget the failure run."""
        self.state = self.CLOSED
        self.failures = 0
        self.probing = False
        self.cooldown = self.config.breaker_cooldown

    def record_failure(self, now: float) -> None:
        """A session timed out at virtual ``now``."""
        if self.state == self.HALF_OPEN:
            # The probe failed: reopen, and back the cool-down off so a
            # persistently sick peer costs ever fewer probe sessions.
            self.cooldown *= self.config.breaker_backoff
            self._open(now)
            return
        self.failures += 1
        if self.state == self.CLOSED and self.failures >= self.config.breaker_failures:
            self._open(now)

    def _open(self, now: float) -> None:
        self.state = self.OPEN
        self.open_until = now + self.cooldown
        self.probing = False
        self.opens += 1


class PeerHealth:
    """One peer's latency history, accrued suspicion and circuit."""

    __slots__ = ("config", "history", "suspicion", "timeouts", "successes", "breaker")

    def __init__(self, config: HealthConfig) -> None:
        self.config = config
        self.history: Deque[float] = deque(maxlen=config.window)
        #: The accrued phi score; decays per round, spikes on timeouts.
        self.suspicion = 0.0
        self.timeouts = 0
        self.successes = 0
        self.breaker = CircuitBreaker(config)

    # -- the normal model of this peer's own history -----------------------

    def _moments(self) -> Tuple[float, float]:
        history = self.history
        mean = sum(history) / len(history)
        variance = sum((x - mean) ** 2 for x in history) / len(history)
        # Floor the deviation so a perfectly steady history still admits
        # some spread (phi would otherwise explode on the first jitter).
        std = max(math.sqrt(variance), 0.1 * mean, 1e-9)
        return mean, std

    def phi(self, latency: float) -> float:
        """The accrual score of one observed latency.

        ``-log10`` of the probability that a latency at least this large
        arises under a normal model of the peer's recent history: phi 1
        means "one in ten", phi 3 "one in a thousand".  Zero until the
        history holds :attr:`HealthConfig.min_samples` observations.
        """
        if len(self.history) < self.config.min_samples:
            return 0.0
        mean, std = self._moments()
        z = (latency - mean) / std
        if z <= 0.0:
            return 0.0
        survival = 0.5 * math.erfc(z / math.sqrt(2.0))
        return -math.log10(max(survival, 1e-15))

    def deadline(self) -> float:
        """This peer's adaptive session deadline, from its own history."""
        config = self.config
        if len(self.history) < config.min_samples:
            return config.max_deadline
        mean, std = self._moments()
        return min(
            config.max_deadline,
            max(config.min_deadline, mean + config.deadline_sigmas * std),
        )

    def weight(self) -> float:
        """The gossip-draw weight: 1.0 when quiet, decaying, never zero."""
        config = self.config
        excess = self.suspicion - config.quiet_suspicion
        if excess <= 0.0:
            return 1.0
        return max(config.min_weight, 2.0 ** -excess)

    # -- observations ------------------------------------------------------

    def observe_success(self, latency: float) -> None:
        """Fold one completed session's virtual latency into the model."""
        self.successes += 1
        score = self.phi(latency)
        self.history.append(latency)
        self.suspicion = max(self.suspicion * self.config.decay, score)
        self.breaker.record_success()

    def observe_timeout(self, now: float) -> None:
        """A session against this peer hit its deadline at virtual ``now``."""
        self.timeouts += 1
        self.suspicion += self.config.timeout_suspicion
        self.breaker.record_failure(now)


class HealthMonitor:
    """The service-wide health registry, keyed by peer index.

    Owns the dedicated health RNG (seed XOR :data:`HEALTH_SEED_SALT`) and
    every per-peer :class:`PeerHealth`.  Peers are materialized lazily,
    so a 10^4-replica service only pays for the peers actually gossiped
    with -- O(N) state, never O(N^2).
    """

    def __init__(
        self, *, config: Optional[HealthConfig] = None, seed: int = 0
    ) -> None:
        self.config = config if config is not None else HealthConfig()
        self.rng = random.Random(seed ^ HEALTH_SEED_SALT)
        self.peers: Dict[int, PeerHealth] = {}
        #: Sessions refused by an open circuit.
        self.breaker_skips = 0
        #: Redraws taken by the weighted gossip draw.
        self.redraws = 0
        #: Hedged (backup) sessions launched after a primary timeout.
        self.hedges = 0
        #: Hedged sessions that themselves completed successfully.
        self.hedge_wins = 0

    def peer(self, index: int) -> PeerHealth:
        entry = self.peers.get(index)
        if entry is None:
            entry = self.peers[index] = PeerHealth(self.config)
        return entry

    # -- session gating ----------------------------------------------------

    def allow(self, index: int, now: float) -> bool:
        """Circuit-breaker gate for a session against peer ``index``."""
        entry = self.peers.get(index)
        if entry is None:
            return True
        if entry.breaker.allow(now):
            return True
        self.breaker_skips += 1
        return False

    def deadline(self, index: int) -> float:
        entry = self.peers.get(index)
        return self.config.max_deadline if entry is None else entry.deadline()

    def observe_success(self, index: int, latency: float) -> None:
        self.peer(index).observe_success(latency)

    def observe_timeout(self, index: int, now: float) -> None:
        self.peer(index).observe_timeout(now)

    def weight(self, index: int) -> float:
        entry = self.peers.get(index)
        return 1.0 if entry is None else entry.weight()

    def decay_round(self) -> None:
        """Per-round suspicion decay: recovered peers earn their way back."""
        decay = self.config.decay
        for entry in self.peers.values():
            entry.suspicion *= decay

    # -- health-aware peer selection ---------------------------------------

    def select(self, members: Sequence[int], initiator: int, drawn: int) -> int:
        """Health-weighted acceptance of a uniformly drawn gossip peer.

        ``drawn`` is the caller's uniform O(1) draw from its *own*
        schedule RNG; this method accepts it with probability equal to
        its weight, redrawing (bounded) from the health RNG otherwise.
        A candidate at weight 1.0 is accepted without consuming any
        health RNG -- the fast path that keeps a healthy cluster's
        schedule byte-identical with the detector on or off.  The redraw
        bound plus the weight floor mean every reachable peer keeps a
        nonzero draw probability: suspicion delays gossip with a grey
        peer, it never excommunicates it.
        """
        peer = drawn
        rng = self.rng
        for _ in range(self.config.max_redraws):
            weight = self.weight(peer)
            if weight >= 1.0 or rng.random() < weight:
                return peer
            self.redraws += 1
            peer = members[rng.randrange(len(members))]
            while peer == initiator:
                peer = members[rng.randrange(len(members))]
        return peer

    def hedge_candidate(
        self, indices: Sequence[int], exclude: Sequence[int]
    ) -> Optional[int]:
        """The healthiest backup peer for a hedged session, or ``None``.

        Deterministic (argmax weight, lowest index wins ties; no RNG):
        a hedge exists to dodge a peer that just proved slow, so it goes
        straight to the best-believed alternative.
        """
        excluded = set(exclude)
        best: Optional[int] = None
        best_weight = -1.0
        for index in indices:
            if index in excluded:
                continue
            weight = self.weight(index)
            if weight > best_weight:
                best, best_weight = index, weight
        return best

    # -- reporting ---------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Aggregate health counters (the service report's health block)."""
        return {
            "peers_tracked": len(self.peers),
            "sessions_observed": sum(p.successes for p in self.peers.values()),
            "timeouts": sum(p.timeouts for p in self.peers.values()),
            "breaker_opens": sum(p.breaker.opens for p in self.peers.values()),
            "breaker_skips": self.breaker_skips,
            "redraws": self.redraws,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
        }

    def table(self) -> List[Dict[str, object]]:
        """Per-peer health rows (sorted by index) for ``--health-table``."""
        rows: List[Dict[str, object]] = []
        for index in sorted(self.peers):
            entry = self.peers[index]
            mean = (
                sum(entry.history) / len(entry.history) if entry.history else 0.0
            )
            rows.append(
                {
                    "peer": index,
                    "samples": len(entry.history),
                    "mean_latency": mean,
                    "deadline": entry.deadline(),
                    "suspicion": entry.suspicion,
                    "weight": entry.weight(),
                    "circuit": entry.breaker.state,
                    "timeouts": entry.timeouts,
                }
            )
        return rows
