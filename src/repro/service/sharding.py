"""Key-range sharding of the replicated key space.

One pairwise anti-entropy exchange decomposes per key: the engine's merge
of key ``k`` reads and writes only ``k``'s own state on the two stores
(:meth:`~repro.replication.store.StoreReplica._merge_key_states` and the
replication fork touch nothing else).  A whole-store sync is therefore
*exactly* equal to syncing each shard of the key space separately, as long
as each shard's exchanges stay ordered -- which is what lets the
datacenter-scale service parallelize one logical round across worker event
loops, one per shard, with no cross-shard coordination at all.

:class:`KeyShards` defines the shards as contiguous ranges of the hashed
key space (CRC32, so the assignment is stable across processes, Python
versions and ``PYTHONHASHSEED``), and :func:`shard_keys` computes the
shard-restricted key list both the async service and its synchronous
reference executor feed to ``WireSyncEngine.sync(..., keys=...)`` -- one
shared helper, so the two paths cannot drift.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Optional

from ..replication.store import StoreReplica

__all__ = ["KeyShards", "shard_keys"]


class KeyShards:
    """Deterministic assignment of keys to ``count`` hashed key ranges."""

    __slots__ = ("count",)

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError(f"need at least one shard, got {count}")
        self.count = count

    def shard_of(self, key: str) -> int:
        """The shard owning ``key``: its CRC32 bucketed into ``count`` ranges."""
        if self.count == 1:
            return 0
        return (zlib.crc32(key.encode("utf-8")) * self.count) >> 32

    def split(self, keys: Iterable[str]) -> List[List[str]]:
        """Partition ``keys`` into per-shard lists (each sorted)."""
        parts: List[List[str]] = [[] for _ in range(self.count)]
        for key in sorted(keys):
            parts[self.shard_of(key)].append(key)
        return parts


def shard_keys(
    first: StoreReplica,
    second: StoreReplica,
    shards: KeyShards,
    shard: int,
) -> Optional[List[str]]:
    """The keys of ``shard`` spanned by a sync of these two stores.

    ``None`` means "unrestricted" (single-shard configuration); an empty
    list means this shard has nothing to exchange and the session part can
    be skipped outright.  Computed fresh per shard part: keys an earlier
    part replicated onto a store belong to that earlier shard by
    definition, so the filter makes the evaluation order irrelevant.
    """
    if shards.count == 1:
        return None
    spanned = set(first._keys) | set(second._keys)
    return sorted(key for key in spanned if shards.shard_of(key) == shard)
