"""The store-side journaling layer: live key states in, sealed records out.

:class:`StoreJournal` sits between a
:class:`~repro.replication.store.StoreReplica` and a
:class:`~repro.durability.log.DurableLog`.  The store calls
:meth:`StoreJournal.record_key` after every accepted mutation (a local
write, a merge, a replication, a rollback) with the key's *post-mutation*
state; the journal turns it into one sealed record and buffers it on the
log.  :meth:`flush` is the durability barrier the replication layer
invokes at its sync boundaries (see the soundness record in
``ROADMAP.md``: the flush-at-sync-completion rule is what makes restoring
a journal safe under the paper's I2 invariant).

Compaction writes the whole live store as one snapshot --
**the snapshot is the bytes already shipped on the wire**: every tracker
serializes through its canonical envelope codec, grouped per
``(family, epoch)`` into the same batched ``"CS"`` streams the sync
engine ships, then the journal is truncated.  Epoch bumps are the natural
moment: right after :meth:`~repro.replication.synchronizer.AntiEntropy.
compact_key` re-roots a key, the old epoch's records describe identifier
space that no longer exists, so the store snapshots and drops them.

Only kernel-tracked stores can be durable: the in-memory baseline
trackers (plain version stamps, ITC, dynamic VV wrappers) have no byte
form, and inventing a private pickle for them would break the
"snapshot = wire state" property the recovery proof rests on.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from ..core.errors import DurabilityError
from ..kernel.clocks import KernelClock
from ..kernel.stream import encode_stream
from .log import DurableLog, FileDurableLog
from .records import (
    KIND_CLEAR,
    KeyRecord,
    SnapshotGroup,
    encode_key_state_record,
    encode_record,
    encode_snapshot,
    encode_value,
)

__all__ = ["StoreJournal", "open_log", "BACKENDS"]

BACKENDS = ("file", "sqlite")

#: Default database filename when the SQLite backend is given a directory.
SQLITE_FILENAME = "store.sqlite"


def open_log(
    path,
    *,
    backend: str = "file",
    fsync_every: Optional[int] = None,
) -> DurableLog:
    """Open (creating if needed) a durable log at ``path``.

    ``backend="file"`` treats ``path`` as a directory holding
    ``journal.log`` + ``snapshot.bin``; ``backend="sqlite"`` treats it as
    the database file (or, when it is an existing directory, places
    ``store.sqlite`` inside it, so both backends can share one store
    directory convention).
    """
    if backend == "file":
        return FileDurableLog(path, fsync_every=fsync_every)
    if backend == "sqlite":
        from .sqlite_log import SQLiteDurableLog

        target = os.fspath(path)
        if os.path.isdir(target):
            target = os.path.join(target, SQLITE_FILENAME)
        return SQLiteDurableLog(target, fsync_every=fsync_every)
    raise DurabilityError(
        f"unknown durable log backend {backend!r} (choose from {BACKENDS})"
    )


#: Envelope header prefixes (magic | version | family tag | epoch u32) by
#: ``(family, epoch)``.  The first 8 bytes of every envelope in one epoch
#: are identical, and journaling mostly sees *fresh* clocks (each merge
#: forks new objects) whose payload cache is warm but whose envelope was
#: never built -- so the hot path assembles the frame from the cached
#: prefix instead of re-running the registry lookup and field validation
#: ``encode_envelope`` performs.  A prefix is only cached after the full
#: validated path ran once for that ``(family, epoch)``, so anything a
#: fresh epoch could get wrong is still caught.
_ENVELOPE_PREFIXES = {}


def _tracker_bytes(key: str, tracker) -> bytes:
    clock = getattr(tracker, "clock", None)
    if isinstance(clock, KernelClock):
        wire = clock._wire
        if wire is not None:
            return wire
        prefix = _ENVELOPE_PREFIXES.get((clock.family, clock.epoch))
        if prefix is not None:
            payload = clock.payload_bytes()
            return prefix + len(payload).to_bytes(4, "big") + payload
        wire = clock.to_bytes()
        _ENVELOPE_PREFIXES[(clock.family, clock.epoch)] = wire[:8]
        return wire
    to_bytes = getattr(tracker, "to_bytes", None)
    if to_bytes is None:
        raise DurabilityError(
            f"key {key!r} is tracked by {type(tracker).__name__}, which has "
            f"no canonical byte form; durable stores need kernel trackers "
            f"(KernelTracker.factory(<family>))"
        )
    try:
        return to_bytes()
    except DurabilityError as exc:
        raise DurabilityError(f"cannot journal key {key!r}: {exc}") from exc


class StoreJournal:
    """Journal + compaction driver of one durable store replica.

    Parameters
    ----------
    log:
        The backing :class:`~repro.durability.log.DurableLog`.
    snapshot_every:
        Auto-compaction threshold: once this many records accumulate past
        the last snapshot, the next :meth:`maybe_snapshot` call compacts.
        ``None`` (default) compacts only when told to (epoch bumps and
        explicit calls).
    """

    def __init__(
        self, log: DurableLog, *, snapshot_every: Optional[int] = None
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise DurabilityError(
                f"snapshot_every must be None or >= 1, got {snapshot_every}"
            )
        self.log = log
        self.snapshot_every = snapshot_every
        #: Sequence number the next record will carry (monotonic).
        self.next_seq = 1
        #: Records journaled since the last installed snapshot.
        self.records_since_snapshot = 0
        #: Lifetime counters (benchmarks and reports).
        self.records_written = 0
        self.snapshots_written = 0

    # -- journaling --------------------------------------------------------

    def record_key(self, key: str, state) -> None:
        """Journal the post-mutation state of ``key`` (``None`` = removed)."""
        if state is None:
            blob = encode_key_state_record(self.next_seq, key, False, False, (), b"")
        else:
            blob = encode_key_state_record(
                self.next_seq,
                key,
                True,
                bool(state.independently_created),
                [encode_value(value) for value in state.values],
                _tracker_bytes(key, state.tracker),
            )
        self.log.append(blob)
        self.next_seq += 1
        self.records_since_snapshot += 1
        self.records_written += 1

    def record_clear(self) -> None:
        """Journal a whole-store clear (crash-stop ``reset()``)."""
        self.log.append(encode_record(KIND_CLEAR, self.next_seq, b""))
        self.next_seq += 1
        self.records_since_snapshot += 1
        self.records_written += 1

    def flush(self) -> None:
        """Commit buffered records -- the store layer's durability barrier."""
        self.log.flush()

    # -- compaction --------------------------------------------------------

    def snapshot(self, store) -> int:
        """Compact ``store``'s live state into an installed snapshot.

        Returns the snapshot size in bytes.  Buffered records are
        committed first, so the snapshot's covered-sequence claim
        (everything below :attr:`next_seq`) is honest even if the
        installation crashes half way.
        """
        self.flush()
        groups = {}
        for key in sorted(store._keys):
            state = store._keys[key]
            clock = getattr(state.tracker, "clock", None)
            if clock is None:
                _tracker_bytes(key, state.tracker)  # raises the typed error
            record = KeyRecord(
                key=key,
                present=True,
                independently_created=bool(state.independently_created),
                values=tuple(encode_value(value) for value in state.values),
                tracker=b"",  # carried by the group stream instead
            )
            groups.setdefault((clock.family, clock.epoch), []).append(
                (record, clock)
            )
        encoded: List[SnapshotGroup] = []
        for (family_name, epoch), members in sorted(groups.items()):
            stream = encode_stream(
                [clock for _, clock in members],
                family_name=family_name,
                epoch=epoch,
            )
            encoded.append(
                SnapshotGroup(
                    records=tuple(record for record, _ in members),
                    stream=stream,
                )
            )
        blob = encode_snapshot(self.next_seq - 1, encoded)
        self.log.install_snapshot(blob)
        self.records_since_snapshot = 0
        self.snapshots_written += 1
        return len(blob)

    def maybe_snapshot(self, store) -> bool:
        """Compact when the auto-compaction threshold has been reached."""
        if (
            self.snapshot_every is not None
            and self.records_since_snapshot >= self.snapshot_every
        ):
            self.snapshot(store)
            return True
        return False

    #: Bump-time snapshots amortize against the journal tail: one fires
    #: only once the tail holds this many records *per live key*.  A
    #: snapshot writes every key while a tail record replays one, so a
    #: factor of a few keeps snapshot work a small fraction of journal
    #: work even under re-rooting storms.
    BUMP_SNAPSHOT_FACTOR = 4

    def snapshot_on_bump(self, store) -> bool:
        """Compact at an epoch bump, amortized against the snapshot's cost.

        Epoch bumps are the natural truncation point (the old epoch's
        records describe identifier space that no longer exists), but a
        snapshot costs O(live keys) -- taking one at *every* bump makes
        frequent re-rooting quadratic.  So the bump only snapshots once
        the journal tail holds :data:`BUMP_SNAPSHOT_FACTOR` records per
        live key (i.e. replaying the tail clearly outweighs writing the
        snapshot), or sooner when ``snapshot_every`` is tighter.
        Correctness never depends on the snapshot happening: replay
        handles stale-epoch records by sequence number regardless.
        """
        threshold = self.BUMP_SNAPSHOT_FACTOR * max(1, len(store._keys))
        if self.snapshot_every is not None:
            threshold = min(threshold, self.snapshot_every)
        if self.records_since_snapshot >= threshold:
            self.snapshot(store)
            return True
        return False

    # -- lifecycle ---------------------------------------------------------

    def simulate_crash(self, *, torn_bytes: int = 0) -> None:
        """Forward a simulated crash to the log (uncommitted records die)."""
        self.log.simulate_crash(torn_bytes=torn_bytes)

    def close(self) -> None:
        self.log.close()
