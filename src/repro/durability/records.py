"""Byte-level codecs of the durable store: journal records and snapshots.

This module is deliberately *pure bytes*: it knows nothing about stores,
trackers or clocks, only how one key's durable state is framed, sealed
and read back.  The layers above
(:mod:`repro.durability.store` / :mod:`repro.durability.recovery`) convert
between these plain record values and live
:class:`~repro.replication.store.KeyState` objects.

Journal record
--------------
One record captures the post-mutation state of one key (or a whole-store
clear) and travels as a single sealed blob::

    offset  size  field
    ------  ----  -----------------------------------------------
         0     1  record kind (1 = key state, 2 = store clear)
         1     8  sequence number, big-endian unsigned
         9     .  kind-specific body
        -4     4  CRC32 over everything before it (the record seal)

The body of a key-state record::

    key length u16 | key (utf-8) | flags u8 | value count u16 |
    per value: length u32 + value-codec bytes |
    tracker length u32 | tracker wire envelope (the ``"CK"`` frame)

``flags`` bit 0 is the store's ``independently_created`` marker; bit 1
set means the key is *absent* (removed by a transactional rollback), in
which case no values or tracker follow.  The tracker bytes are exactly
what :meth:`~repro.replication.tracker.KernelTracker.to_bytes` ships on
the wire -- the snapshot and the sync path share one codec, so durable
state is proven canonical by the same tests that prove the wire format.

Sequence numbers are issued monotonically by the journal; a snapshot
records the highest sequence it covers, so replay after a compaction
crash (snapshot installed, journal not yet truncated) skips the already
-covered prefix instead of regressing keys.

Snapshot
--------
A snapshot is the compacted whole-store state: the latest key records
grouped by ``(clock family, epoch)``, each group carrying its causal
metadata as **one batched ``"CS"`` stream** (:mod:`repro.kernel.stream`)
whose frame *i* belongs to key *i* of the group's key table::

    magic b"DS" | format version u8 | covered sequence u64 |
    group count u32 |
    per group: key-table length u32 | key table |
               stream length u32 | "CS" stream |
    CRC32 over everything before it

Because the stream header names family, epoch and frame count on its
own, an inspection tool can classify a snapshot -- families, epochs,
record counts -- via :func:`~repro.kernel.stream.stream_info` without
decoding a single payload.

Every structural rejection is typed: :class:`~repro.core.errors.LogCorrupt`
for damaged framing or failed seals, :class:`~repro.core.errors.
DurabilityError` for misuse (oversized fields, unserializable values).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.errors import DurabilityError, LogCorrupt

__all__ = [
    "KIND_STATE",
    "KIND_CLEAR",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_FORMAT_VERSION",
    "KeyRecord",
    "SnapshotGroup",
    "encode_value",
    "decode_value",
    "encode_record",
    "decode_record",
    "encode_key_state_record",
    "encode_state_body",
    "decode_state_body",
    "encode_snapshot",
    "decode_snapshot",
    "snapshot_streams",
]

KIND_STATE = 1
KIND_CLEAR = 2

SNAPSHOT_MAGIC = b"DS"
SNAPSHOT_FORMAT_VERSION = 1

_FLAG_INDEPENDENT = 0x01
_FLAG_ABSENT = 0x02

_MAX_U16 = (1 << 16) - 1
_MAX_U32 = (1 << 32) - 1
_MAX_SEQ = (1 << 64) - 1

_CRC_BYTES = 4
_RECORD_HEADER = 9  # kind u8 + seq u64


def _crc(blob) -> int:
    return zlib.crc32(blob) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# value codec
# ---------------------------------------------------------------------------


# One shared encoder: ``json.dumps(..., sort_keys=True)`` cannot reuse
# the module's cached default encoder and builds a fresh ``JSONEncoder``
# per call, which is measurable on the journal hot path.
_JSON_ENCODE = json.JSONEncoder(sort_keys=True).encode


def encode_value(value: object) -> bytes:
    """Serialize one sibling value (JSON by default -- honest and typed).

    The store holds arbitrary Python objects in memory; durability needs a
    byte form.  JSON covers every value the simulation layer writes
    (strings, numbers, ``None`` tombstones, lists/dicts of those); anything
    else is rejected with a typed :class:`DurabilityError` rather than
    pickled silently.
    """
    try:
        return _JSON_ENCODE(value).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise DurabilityError(
            f"value {value!r} is not JSON-serializable; durable stores "
            f"need JSON-compatible values"
        ) from exc


def decode_value(blob: bytes) -> object:
    try:
        return json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise LogCorrupt(f"undecodable value bytes in durable record: {exc}") from exc


# ---------------------------------------------------------------------------
# record values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KeyRecord:
    """The durable state of one key, as plain decoded data.

    ``present=False`` records a key removal (a transactional rollback that
    restored "never held"); ``values`` then is empty and ``tracker`` is
    ``b""``.  ``tracker`` is the key tracker's wire envelope, byte for
    byte what the sync path ships.
    """

    key: str
    present: bool
    independently_created: bool
    values: Tuple[bytes, ...]
    tracker: bytes


@dataclass(frozen=True)
class SnapshotGroup:
    """One ``(family, epoch)`` group of a decoded snapshot.

    ``records`` carry empty ``tracker`` fields -- the group's causal
    metadata lives in ``stream`` (one ``"CS"`` frame per record, same
    order), which the recovery layer decodes through the kernel.
    """

    records: Tuple[KeyRecord, ...]
    stream: bytes


# ---------------------------------------------------------------------------
# journal records
# ---------------------------------------------------------------------------


def _check_len(what: str, length: int, ceiling: int) -> int:
    if length > ceiling:
        raise DurabilityError(f"{what} of {length} bytes exceeds the wire field")
    return length


def encode_record(kind: int, seq: int, body: bytes) -> bytes:
    """Frame and seal one journal record."""
    if kind not in (KIND_STATE, KIND_CLEAR):
        raise DurabilityError(f"unknown record kind {kind}")
    if not 0 <= seq <= _MAX_SEQ:
        raise DurabilityError(f"sequence number {seq} exceeds the 64-bit field")
    head = bytes((kind,)) + seq.to_bytes(8, "big") + body
    return head + _crc(head).to_bytes(_CRC_BYTES, "big")


def decode_record(blob: bytes) -> Tuple[int, int, bytes]:
    """Unseal one record: ``(kind, seq, body)``; typed on any damage."""
    if len(blob) < _RECORD_HEADER + _CRC_BYTES:
        raise LogCorrupt(
            f"record of {len(blob)} bytes is shorter than its header and seal"
        )
    head, seal = blob[:-_CRC_BYTES], blob[-_CRC_BYTES:]
    if _crc(head) != int.from_bytes(seal, "big"):
        raise LogCorrupt("record failed its CRC seal")
    kind = head[0]
    if kind not in (KIND_STATE, KIND_CLEAR):
        raise LogCorrupt(f"record declares unknown kind {kind}")
    seq = int.from_bytes(head[1:9], "big")
    return kind, seq, head[_RECORD_HEADER:]


def encode_state_body(record: KeyRecord) -> bytes:
    """The key-state body of one journal record (without framing/seal)."""
    key_bytes = record.key.encode("utf-8")
    _check_len(f"key {record.key!r}", len(key_bytes), _MAX_U16)
    flags = 0
    if record.independently_created:
        flags |= _FLAG_INDEPENDENT
    parts = [len(key_bytes).to_bytes(2, "big"), key_bytes]
    if not record.present:
        parts.append(bytes((flags | _FLAG_ABSENT,)))
        return b"".join(parts)
    parts.append(bytes((flags,)))
    _check_len("value count", len(record.values), _MAX_U16)
    parts.append(len(record.values).to_bytes(2, "big"))
    for value in record.values:
        _check_len("value", len(value), _MAX_U32)
        parts.append(len(value).to_bytes(4, "big"))
        parts.append(value)
    _check_len("tracker envelope", len(record.tracker), _MAX_U32)
    parts.append(len(record.tracker).to_bytes(4, "big"))
    parts.append(record.tracker)
    return b"".join(parts)


_KIND_STATE_BYTE = bytes((KIND_STATE,))


def encode_key_state_record(
    seq: int,
    key: str,
    present: bool,
    independent: bool,
    values: Tuple[bytes, ...],
    tracker: bytes,
) -> bytes:
    """Fused framing of one key-state record, for the journal hot path.

    Byte-for-byte identical to
    ``encode_record(KIND_STATE, seq, encode_state_body(KeyRecord(...)))``
    (a unit test holds the two paths equal) but builds the sealed blob in
    a single pass -- no intermediate :class:`KeyRecord`, no separate body
    buffer -- which matters when every sync round journals a dozen
    records.
    """
    if not 0 <= seq <= _MAX_SEQ:
        raise DurabilityError(f"sequence number {seq} exceeds the 64-bit field")
    key_bytes = key.encode("utf-8")
    _check_len(f"key {key!r}", len(key_bytes), _MAX_U16)
    flags = _FLAG_INDEPENDENT if independent else 0
    parts = [
        _KIND_STATE_BYTE,
        seq.to_bytes(8, "big"),
        len(key_bytes).to_bytes(2, "big"),
        key_bytes,
    ]
    if not present:
        parts.append(bytes((flags | _FLAG_ABSENT,)))
    else:
        parts.append(bytes((flags,)))
        _check_len("value count", len(values), _MAX_U16)
        parts.append(len(values).to_bytes(2, "big"))
        for value in values:
            _check_len("value", len(value), _MAX_U32)
            parts.append(len(value).to_bytes(4, "big"))
            parts.append(value)
        _check_len("tracker envelope", len(tracker), _MAX_U32)
        parts.append(len(tracker).to_bytes(4, "big"))
        parts.append(tracker)
    head = b"".join(parts)
    return head + _crc(head).to_bytes(_CRC_BYTES, "big")


class _Reader:
    """A bounds-checked cursor over one body's bytes (typed on overrun)."""

    __slots__ = ("_data", "_pos", "_what")

    def __init__(self, data: bytes, what: str) -> None:
        self._data = data
        self._pos = 0
        self._what = what

    def take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise LogCorrupt(
                f"{self._what} truncated: needed {count} bytes at offset "
                f"{self._pos}, only {len(self._data) - self._pos} remain"
            )
        chunk = self._data[self._pos : end]
        self._pos = end
        return chunk

    def uint(self, width: int) -> int:
        return int.from_bytes(self.take(width), "big")

    def done(self) -> bool:
        return self._pos == len(self._data)

    def remaining(self) -> int:
        return len(self._data) - self._pos


def _read_key_entry(reader: _Reader, *, with_tracker: bool) -> KeyRecord:
    key_len = reader.uint(2)
    try:
        key = reader.take(key_len).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise LogCorrupt(f"record key is not valid utf-8: {exc}") from exc
    flags = reader.uint(1)
    if flags & ~(_FLAG_INDEPENDENT | _FLAG_ABSENT):
        raise LogCorrupt(f"record flags {flags:#x} set unknown bits")
    independent = bool(flags & _FLAG_INDEPENDENT)
    if flags & _FLAG_ABSENT:
        return KeyRecord(key, False, independent, (), b"")
    value_count = reader.uint(2)
    values = []
    for _ in range(value_count):
        values.append(bytes(reader.take(reader.uint(4))))
    tracker = b""
    if with_tracker:
        tracker = bytes(reader.take(reader.uint(4)))
    return KeyRecord(key, True, independent, tuple(values), tracker)


def decode_state_body(body: bytes) -> KeyRecord:
    """Decode a key-state body; every malformation is :class:`LogCorrupt`."""
    reader = _Reader(body, "key-state record")
    record = _read_key_entry(reader, with_tracker=True)
    if not reader.done():
        raise LogCorrupt(
            f"{reader.remaining()} trailing bytes after the key-state body"
        )
    return record


# ---------------------------------------------------------------------------
# snapshots
# ---------------------------------------------------------------------------


def _encode_key_table(records: Tuple[KeyRecord, ...]) -> bytes:
    parts = [len(records).to_bytes(4, "big")]
    for record in records:
        key_bytes = record.key.encode("utf-8")
        _check_len(f"key {record.key!r}", len(key_bytes), _MAX_U16)
        flags = _FLAG_INDEPENDENT if record.independently_created else 0
        parts.append(len(key_bytes).to_bytes(2, "big"))
        parts.append(key_bytes)
        parts.append(bytes((flags,)))
        _check_len("value count", len(record.values), _MAX_U16)
        parts.append(len(record.values).to_bytes(2, "big"))
        for value in record.values:
            _check_len("value", len(value), _MAX_U32)
            parts.append(len(value).to_bytes(4, "big"))
            parts.append(value)
    return b"".join(parts)


def _decode_key_table(blob: bytes) -> Tuple[KeyRecord, ...]:
    reader = _Reader(blob, "snapshot key table")
    count = reader.uint(4)
    records = []
    for _ in range(count):
        key_len = reader.uint(2)
        try:
            key = reader.take(key_len).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise LogCorrupt(f"snapshot key is not valid utf-8: {exc}") from exc
        flags = reader.uint(1)
        if flags & ~_FLAG_INDEPENDENT:
            raise LogCorrupt(f"snapshot flags {flags:#x} set unknown bits")
        value_count = reader.uint(2)
        values = []
        for _ in range(value_count):
            values.append(bytes(reader.take(reader.uint(4))))
        records.append(
            KeyRecord(key, True, bool(flags & _FLAG_INDEPENDENT), tuple(values), b"")
        )
    if not reader.done():
        raise LogCorrupt(
            f"{reader.remaining()} trailing bytes after the snapshot key table"
        )
    return tuple(records)


def encode_snapshot(upto_seq: int, groups: List[SnapshotGroup]) -> bytes:
    """Frame and seal one compacted snapshot."""
    if not 0 <= upto_seq <= _MAX_SEQ:
        raise DurabilityError(f"sequence number {upto_seq} exceeds the 64-bit field")
    _check_len("snapshot group count", len(groups), _MAX_U32)
    parts = [
        SNAPSHOT_MAGIC,
        bytes((SNAPSHOT_FORMAT_VERSION,)),
        upto_seq.to_bytes(8, "big"),
        len(groups).to_bytes(4, "big"),
    ]
    for group in groups:
        table = _encode_key_table(group.records)
        _check_len("snapshot key table", len(table), _MAX_U32)
        _check_len("snapshot stream", len(group.stream), _MAX_U32)
        parts.append(len(table).to_bytes(4, "big"))
        parts.append(table)
        parts.append(len(group.stream).to_bytes(4, "big"))
        parts.append(group.stream)
    body = b"".join(parts)
    return body + _crc(body).to_bytes(_CRC_BYTES, "big")


def _snapshot_reader(blob: bytes, *, verify_seal: bool) -> Tuple[_Reader, int, int]:
    if len(blob) < 15 + _CRC_BYTES:
        raise LogCorrupt(f"snapshot of {len(blob)} bytes is shorter than its header")
    if blob[:2] != SNAPSHOT_MAGIC:
        raise LogCorrupt(
            f"bad snapshot magic {bytes(blob[:2])!r} (expected {SNAPSHOT_MAGIC!r})"
        )
    if blob[2] != SNAPSHOT_FORMAT_VERSION:
        raise LogCorrupt(f"unsupported snapshot format version {blob[2]}")
    if verify_seal:
        body, seal = blob[:-_CRC_BYTES], blob[-_CRC_BYTES:]
        if _crc(body) != int.from_bytes(seal, "big"):
            raise LogCorrupt("snapshot failed its CRC seal")
    reader = _Reader(blob[15:-_CRC_BYTES], "snapshot body")
    upto_seq = int.from_bytes(blob[3:11], "big")
    group_count = int.from_bytes(blob[11:15], "big")
    return reader, upto_seq, group_count


def decode_snapshot(blob: bytes) -> Tuple[int, List[SnapshotGroup]]:
    """Unseal a snapshot into ``(covered sequence, groups)``."""
    reader, upto_seq, group_count = _snapshot_reader(blob, verify_seal=True)
    groups = []
    for _ in range(group_count):
        table = _decode_key_table(bytes(reader.take(reader.uint(4))))
        stream = bytes(reader.take(reader.uint(4)))
        groups.append(SnapshotGroup(records=table, stream=stream))
    if not reader.done():
        raise LogCorrupt(
            f"{reader.remaining()} trailing bytes after the declared "
            f"{group_count} snapshot groups"
        )
    return upto_seq, groups


def snapshot_streams(blob: bytes) -> Tuple[int, List[Tuple[int, bytes]], bool]:
    """The header-only view: ``(covered seq, [(key count, stream)], seal ok)``.

    Walks the group framing without decoding key tables beyond their entry
    count and without touching any stream payload, so an inspection tool
    can feed each stream straight to
    :func:`~repro.kernel.stream.stream_info`.  The seal verdict is
    returned rather than raised so inspection can describe a damaged
    snapshot instead of refusing to look at it; structural damage that
    prevents even walking the frames still raises :class:`LogCorrupt`.
    """
    body, seal = blob[:-_CRC_BYTES], blob[-_CRC_BYTES:]
    seal_ok = len(blob) > _CRC_BYTES and _crc(body) == int.from_bytes(seal, "big")
    reader, upto_seq, group_count = _snapshot_reader(blob, verify_seal=False)
    streams = []
    for _ in range(group_count):
        table = bytes(reader.take(reader.uint(4)))
        if len(table) < 4:
            raise LogCorrupt("snapshot key table shorter than its entry count")
        key_count = int.from_bytes(table[:4], "big")
        streams.append((key_count, bytes(reader.take(reader.uint(4)))))
    return upto_seq, streams, seal_ok
