"""Crash recovery: rebuild a live store replica from snapshot + journal tail.

The recovery procedure and why it is sound (the full argument is the
design record in ``ROADMAP.md``):

1. **Snapshot first.**  The installed snapshot, when present, is decoded
   through the same kernel codecs that produced it -- each group's
   ``"CS"`` stream yields the trackers, the key table the values -- so
   the rebuilt trackers are *byte-identical* to the pre-crash ones
   (canonical codecs: equal bytes are equal clocks).  A snapshot failing
   its seal or structure raises :class:`~repro.core.errors.LogCorrupt`:
   there is no valid prefix to fall back to below a broken snapshot.
2. **Then the journal tail.**  Records are replayed in sequence order;
   each is the post-mutation state of one key, so replay is pure
   last-writer-wins assignment -- naturally idempotent.  Records whose
   sequence number the snapshot already covers are skipped, which is
   what makes a crash *between* snapshot installation and journal
   truncation harmless.
3. **Torn tails truncate, never poison.**  The log backend cuts the
   journal at the first record that fails its CRC seal and reports a
   typed :class:`~repro.durability.log.TailDamage`.  Whatever the tail
   carried still exists on the peers it was synced with; anti-entropy
   re-syncs the gap.  The one thing that can never happen is a damaged
   frame silently entering the rebuilt state.

The rebuilt replica reattaches to the same journal (sequence numbers
continue after the highest recovered), so recovery composes: crash,
recover, crash again, recover again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.errors import LogCorrupt
from ..kernel.stream import decode_stream
from .log import DurableLog, TailDamage
from .records import (
    KIND_CLEAR,
    KIND_STATE,
    decode_record,
    decode_snapshot,
    decode_state_body,
    decode_value,
)
from .store import StoreJournal, open_log

__all__ = ["RecoveryReport", "rebuild", "recover_replica"]


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery pass found and did -- typed, never silent.

    ``tail`` is ``None`` for a clean shutdown; otherwise it describes the
    torn journal tail that was truncated away (and that anti-entropy will
    re-sync).  ``records_skipped`` counts journal records the snapshot
    already covered -- nonzero exactly when the pre-crash process died
    between installing a snapshot and truncating the journal.
    """

    snapshot_keys: int
    snapshot_groups: int
    records_replayed: int
    records_skipped: int
    clears_applied: int
    upto_seq: int
    last_seq: int
    tail: Optional[TailDamage]

    @property
    def clean(self) -> bool:
        """True when no damage was found (tail intact)."""
        return self.tail is None


def _rebuild_keys(log: DurableLog):
    """Replay snapshot + journal into ``{key: (values, clock-or-bytes,
    independent)}`` plus the bookkeeping the report needs."""
    from ..replication.store import KeyState
    from ..replication.tracker import KernelTracker

    keys = {}
    snapshot_keys = 0
    snapshot_groups = 0
    upto_seq = 0
    blob = log.read_snapshot()
    if blob is not None:
        upto_seq, groups = decode_snapshot(blob)
        snapshot_groups = len(groups)
        for group in groups:
            stream = decode_stream(group.stream)
            if len(stream) != len(group.records):
                raise LogCorrupt(
                    f"snapshot group carries {len(group.records)} keys but "
                    f"its stream holds {len(stream)} frames"
                )
            for index, record in enumerate(group.records):
                keys[record.key] = KeyState(
                    values=[decode_value(value) for value in record.values],
                    tracker=KernelTracker(stream[index]),
                    independently_created=record.independently_created,
                )
                snapshot_keys += 1

    replayed = skipped = clears = 0
    last_seq = upto_seq
    blobs, tail = log.replay()
    for record_blob in blobs:
        kind, seq, body = decode_record(record_blob)
        if seq > last_seq:
            last_seq = seq
        if seq <= upto_seq:
            skipped += 1
            continue
        if kind == KIND_CLEAR:
            keys.clear()
            clears += 1
            continue
        record = decode_state_body(body)
        if not record.present:
            keys.pop(record.key, None)
        else:
            keys[record.key] = KeyState(
                values=[decode_value(value) for value in record.values],
                tracker=KernelTracker.from_bytes(record.tracker),
                independently_created=record.independently_created,
            )
        replayed += 1
    report = RecoveryReport(
        snapshot_keys=snapshot_keys,
        snapshot_groups=snapshot_groups,
        records_replayed=replayed,
        records_skipped=skipped,
        clears_applied=clears,
        upto_seq=upto_seq,
        last_seq=last_seq,
        tail=tail,
    )
    return keys, report


def rebuild(
    log: DurableLog,
    *,
    name: str,
    tracker_factory=None,
    policy=None,
    snapshot_every: Optional[int] = None,
) -> Tuple["StoreReplica", RecoveryReport]:
    """Rebuild a replica from an open log and reattach it for journaling.

    ``tracker_factory`` (for keys created *after* recovery) defaults to
    the family of the recovered state, falling back to version stamps for
    an empty store.
    """
    from ..replication.store import StoreReplica
    from ..replication.tracker import KernelTracker

    keys, report = _rebuild_keys(log)
    if tracker_factory is None:
        family = "version-stamp"
        for state in keys.values():
            family = state.tracker.family
            break
        tracker_factory = KernelTracker.factory(family)
    journal = StoreJournal(log, snapshot_every=snapshot_every)
    journal.next_seq = report.last_seq + 1
    store = StoreReplica(
        name, tracker_factory=tracker_factory, policy=policy, journal=journal
    )
    store._keys.update(keys)
    return store, report


def recover_replica(
    path,
    *,
    name: str,
    backend: str = "file",
    tracker_factory=None,
    policy=None,
    fsync_every: Optional[int] = None,
    snapshot_every: Optional[int] = None,
) -> Tuple["StoreReplica", RecoveryReport]:
    """Open the durable log at ``path`` and rebuild its replica."""
    log = open_log(path, backend=backend, fsync_every=fsync_every)
    return rebuild(
        log,
        name=name,
        tracker_factory=tracker_factory,
        policy=policy,
        snapshot_every=snapshot_every,
    )
