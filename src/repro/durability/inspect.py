"""Header-only inspection of durable store artifacts (``repro store inspect``).

Answers "what is in this store directory?" -- backend, snapshot groups
(family, epoch, record count), journal record counts, sequence range and
CRC status -- **without decoding a single clock payload or value**:
snapshot groups are classified through
:func:`~repro.kernel.stream.stream_info` (the ``"CS"`` header peek) and
journal trackers through :func:`~repro.kernel.envelope_info` (the
``"CK"`` header peek).  Damage is part of the answer, not an obstacle to
it: a torn journal tail or a snapshot failing its seal is *described* in
the report instead of aborting the dump -- this is the tool one reaches
for exactly when a store looks broken.

Inspection is strictly read-only.  Unlike recovery, it does **not**
truncate a damaged journal; it reads the raw bytes and reports where the
valid prefix ends.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.errors import DurabilityError, LogCorrupt
from ..kernel import envelope_info
from ..kernel.stream import stream_info
from .log import FileDurableLog
from .records import KIND_CLEAR, decode_record, decode_state_body, snapshot_streams
from .store import SQLITE_FILENAME

__all__ = [
    "GroupInfo",
    "JournalInfo",
    "SnapshotInfo",
    "StoreInfo",
    "inspect_path",
    "format_report",
]

_LEN = struct.Struct(">I")
_SQLITE_MAGIC = b"SQLite format 3\x00"


@dataclass(frozen=True)
class GroupInfo:
    """One snapshot group, classified from its stream header alone."""

    family: str
    epoch: int
    keys: int
    stream_bytes: int


@dataclass(frozen=True)
class SnapshotInfo:
    present: bool
    bytes: int = 0
    crc_ok: bool = False
    upto_seq: int = 0
    groups: Tuple[GroupInfo, ...] = ()
    error: Optional[str] = None


@dataclass(frozen=True)
class JournalInfo:
    bytes: int
    records: int
    state_records: int
    clear_records: int
    first_seq: int
    last_seq: int
    #: ``family -> count`` of state-record trackers, from envelope headers.
    families: Tuple[Tuple[str, int], ...]
    #: Epochs seen across state-record trackers.
    epochs: Tuple[int, ...]
    #: Where the CRC-valid prefix ends, when damage was found.
    damage: Optional[str] = None
    damage_offset: int = 0


@dataclass(frozen=True)
class StoreInfo:
    path: str
    backend: str
    snapshot: SnapshotInfo
    journal: JournalInfo

    @property
    def healthy(self) -> bool:
        return (
            self.journal.damage is None
            and (not self.snapshot.present or self.snapshot.crc_ok)
        )


def _detect(path: str) -> Tuple[str, str]:
    """Resolve ``path`` to ``(backend, concrete path)``."""
    if os.path.isdir(path):
        sqlite_path = os.path.join(path, SQLITE_FILENAME)
        journal_path = os.path.join(path, FileDurableLog.JOURNAL)
        snapshot_path = os.path.join(path, FileDurableLog.SNAPSHOT)
        if os.path.exists(journal_path) or os.path.exists(snapshot_path):
            return "file", path
        if os.path.exists(sqlite_path):
            return "sqlite", sqlite_path
        raise DurabilityError(
            f"{path!r} holds neither a file-backend store "
            f"({FileDurableLog.JOURNAL}) nor a SQLite store ({SQLITE_FILENAME})"
        )
    if not os.path.exists(path):
        raise DurabilityError(f"no durable store at {path!r}")
    with open(path, "rb") as handle:
        head = handle.read(len(_SQLITE_MAGIC))
    if head == _SQLITE_MAGIC:
        return "sqlite", path
    raise DurabilityError(
        f"{path!r} is neither a store directory nor a SQLite store file"
    )


def _inspect_snapshot(blob: Optional[bytes]) -> SnapshotInfo:
    if blob is None:
        return SnapshotInfo(present=False)
    try:
        upto_seq, streams, seal_ok = snapshot_streams(blob)
    except LogCorrupt as exc:
        return SnapshotInfo(present=True, bytes=len(blob), error=str(exc))
    groups = []
    error = None
    for keys, stream in streams:
        try:
            info = stream_info(stream)
        except Exception as exc:  # typed EncodingError family in practice
            error = f"unreadable group stream header: {exc}"
            continue
        groups.append(
            GroupInfo(
                family=info.family,
                epoch=info.epoch,
                keys=keys,
                stream_bytes=len(stream),
            )
        )
    return SnapshotInfo(
        present=True,
        bytes=len(blob),
        crc_ok=seal_ok,
        upto_seq=upto_seq,
        groups=tuple(groups),
        error=error,
    )


def _scan_blobs(blobs, total_bytes, damage, damage_offset) -> JournalInfo:
    records = state = clears = 0
    first_seq = last_seq = 0
    families = {}
    epochs = set()
    for blob in blobs:
        kind, seq, body = decode_record(blob)
        records += 1
        if first_seq == 0:
            first_seq = seq
        last_seq = max(last_seq, seq)
        if kind == KIND_CLEAR:
            clears += 1
            continue
        state += 1
        record = decode_state_body(body)
        if record.tracker:
            info = envelope_info(record.tracker)
            families[info.family] = families.get(info.family, 0) + 1
            epochs.add(info.epoch)
    return JournalInfo(
        bytes=total_bytes,
        records=records,
        state_records=state,
        clear_records=clears,
        first_seq=first_seq,
        last_seq=last_seq,
        families=tuple(sorted(families.items())),
        epochs=tuple(sorted(epochs)),
        damage=damage,
        damage_offset=damage_offset,
    )


def _inspect_file(path: str) -> StoreInfo:
    snapshot_path = os.path.join(path, FileDurableLog.SNAPSHOT)
    journal_path = os.path.join(path, FileDurableLog.JOURNAL)
    snapshot_blob = None
    if os.path.exists(snapshot_path):
        with open(snapshot_path, "rb") as handle:
            snapshot_blob = handle.read()
    data = b""
    if os.path.exists(journal_path):
        with open(journal_path, "rb") as handle:
            data = handle.read()
    blobs: List[bytes] = []
    offset = 0
    damage = None
    while offset < len(data):
        if offset + _LEN.size > len(data):
            damage = "torn length prefix at end of journal"
            break
        (length,) = _LEN.unpack_from(data, offset)
        start = offset + _LEN.size
        if start + length > len(data):
            damage = f"record declares {length} bytes past end of journal"
            break
        blob = data[start : start + length]
        try:
            decode_record(blob)
        except LogCorrupt as exc:
            damage = str(exc)
            break
        blobs.append(blob)
        offset = start + length
    journal = _scan_blobs(blobs, len(data), damage, offset if damage else 0)
    return StoreInfo(
        path=path,
        backend="file",
        snapshot=_inspect_snapshot(snapshot_blob),
        journal=journal,
    )


def _inspect_sqlite(path: str) -> StoreInfo:
    import sqlite3

    connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    try:
        row = connection.execute(
            "SELECT blob FROM snapshot WHERE id = 1"
        ).fetchone()
        snapshot_blob = bytes(row[0]) if row is not None else None
        rows = connection.execute(
            "SELECT blob FROM journal ORDER BY id"
        ).fetchall()
    except sqlite3.DatabaseError as exc:
        raise DurabilityError(f"cannot read SQLite store {path!r}: {exc}") from exc
    finally:
        connection.close()
    blobs = []
    total = 0
    damage = None
    offset = 0
    for (raw,) in rows:
        blob = bytes(raw)
        total += len(blob)
        try:
            decode_record(blob)
        except LogCorrupt as exc:
            damage = str(exc)
            break
        offset += len(blob)
        blobs.append(blob)
    journal = _scan_blobs(blobs, total, damage, offset if damage else 0)
    return StoreInfo(
        path=path,
        backend="sqlite",
        snapshot=_inspect_snapshot(snapshot_blob),
        journal=journal,
    )


def inspect_path(path) -> StoreInfo:
    """Inspect the durable store at ``path`` (directory or SQLite file)."""
    backend, concrete = _detect(os.fspath(path))
    if backend == "file":
        return _inspect_file(concrete)
    return _inspect_sqlite(concrete)


def format_report(info: StoreInfo) -> str:
    """Human-readable dump of one :class:`StoreInfo` (the CLI output)."""
    lines = [
        f"store:    {info.path}",
        f"backend:  {info.backend}",
        f"status:   {'healthy' if info.healthy else 'DAMAGED'}",
    ]
    snapshot = info.snapshot
    if not snapshot.present:
        lines.append("snapshot: none")
    else:
        seal = "ok" if snapshot.crc_ok else "FAILED"
        lines.append(
            f"snapshot: {snapshot.bytes} bytes, crc {seal}, "
            f"covers seq <= {snapshot.upto_seq}"
        )
        if snapshot.error:
            lines.append(f"  damage: {snapshot.error}")
        for group in snapshot.groups:
            lines.append(
                f"  group: family={group.family} epoch={group.epoch} "
                f"keys={group.keys} stream={group.stream_bytes}B"
            )
    journal = info.journal
    lines.append(
        f"journal:  {journal.bytes} bytes, {journal.records} records "
        f"({journal.state_records} state, {journal.clear_records} clear), "
        f"seq {journal.first_seq}..{journal.last_seq}"
    )
    for family, count in journal.families:
        lines.append(f"  family: {family} x{count}")
    if journal.epochs:
        lines.append(f"  epochs: {', '.join(str(e) for e in journal.epochs)}")
    if journal.damage:
        lines.append(
            f"  damage: {journal.damage} (valid prefix ends at byte "
            f"{journal.damage_offset}; recovery would truncate here and "
            f"re-sync via anti-entropy)"
        )
    return "\n".join(lines)
