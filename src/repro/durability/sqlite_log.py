"""SQLite backend of the :class:`~repro.durability.log.DurableLog` interface.

Stores the *same sealed record blobs* as the plain-file backend, one row
per record, so everything above the interface (journaling, compaction,
recovery, the corruption properties) runs unchanged over either backend.
What SQLite buys is its own write-ahead machinery: a commit is one
transaction, snapshot installation + journal truncation is **one atomic
transaction** (no rename/truncate window at all), and torn writes at the
device level are SQLite's problem rather than ours.

What it does *not* buy is trust: the per-record CRC seals are still
verified on replay.  A blob damaged inside the database (bit rot, a
hostile edit) condemns that record and everything after it exactly like
a torn file tail -- the valid prefix is kept, the rest is deleted and
reported as :class:`~repro.durability.log.TailDamage`, never silently
decoded.  Belt and braces: the log's integrity story never depends on
the container.

``fsync_every`` maps onto ``PRAGMA synchronous``: ``None`` runs at
``OFF`` (commits reach the OS cache -- the process-crash model, same as
the file backend's default), any batching value runs at ``FULL`` so
every Nth flush is a device-durable checkpoint.
"""

from __future__ import annotations

import os
import sqlite3
from typing import List, Optional, Tuple

from ..core.errors import LogCorrupt
from .log import DurableLog, TailDamage
from .records import decode_record

__all__ = ["SQLiteDurableLog"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS journal (
    id   INTEGER PRIMARY KEY AUTOINCREMENT,
    blob BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshot (
    id   INTEGER PRIMARY KEY CHECK (id = 1),
    blob BLOB NOT NULL
);
"""


class SQLiteDurableLog(DurableLog):
    """One-file SQLite store of sealed journal records plus one snapshot."""

    def __init__(self, path, *, fsync_every: Optional[int] = None) -> None:
        super().__init__(fsync_every=fsync_every)
        self.path = os.fspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._connection = self._connect()

    def _connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(self.path)
        connection.executescript(_SCHEMA)
        connection.commit()
        mode = "FULL" if self.fsync_every is not None else "OFF"
        connection.execute(f"PRAGMA synchronous = {mode}")
        return connection

    # -- appends -----------------------------------------------------------

    def _commit(self, blobs: List[bytes]) -> None:
        self._connection.executemany(
            "INSERT INTO journal (blob) VALUES (?)",
            [(sqlite3.Binary(blob),) for blob in blobs],
        )
        self._connection.commit()

    def _fsync(self) -> None:
        # Commits already ran at synchronous=FULL when fsync batching is
        # on; there is no separate device-sync step to perform.
        pass

    def journal_bytes(self) -> int:
        row = self._connection.execute(
            "SELECT COALESCE(SUM(LENGTH(blob) + 4), 0) FROM journal"
        ).fetchone()
        return int(row[0])

    # -- replay ------------------------------------------------------------

    def replay(self) -> Tuple[List[bytes], Optional[TailDamage]]:
        rows = self._connection.execute(
            "SELECT id, blob FROM journal ORDER BY id"
        ).fetchall()
        blobs: List[bytes] = []
        damage: Optional[TailDamage] = None
        offset = 0
        for position, (row_id, blob) in enumerate(rows):
            blob = bytes(blob)
            try:
                decode_record(blob)
            except LogCorrupt as exc:
                dropped = sum(len(bytes(b)) for _, b in rows[position:])
                damage = TailDamage(
                    offset=offset, dropped_bytes=dropped, reason=str(exc)
                )
                self._connection.execute(
                    "DELETE FROM journal WHERE id >= ?", (row_id,)
                )
                self._connection.commit()
                break
            blobs.append(blob)
            offset += len(blob)
        return blobs, damage

    # -- snapshots ---------------------------------------------------------

    def read_snapshot(self) -> Optional[bytes]:
        row = self._connection.execute(
            "SELECT blob FROM snapshot WHERE id = 1"
        ).fetchone()
        return bytes(row[0]) if row is not None else None

    def install_snapshot(self, blob: bytes) -> None:
        # One transaction installs the snapshot and truncates the journal
        # atomically; the crash hooks still fire (with an intermediate
        # commit between them) so mid-compaction crash tests can freeze
        # the same two windows the file backend has.
        self._crash_point("snapshot-written")
        self._connection.execute(
            "INSERT INTO snapshot (id, blob) VALUES (1, ?) "
            "ON CONFLICT (id) DO UPDATE SET blob = excluded.blob",
            (sqlite3.Binary(blob),),
        )
        if self.crash_hook is not None:
            # Split the transaction only when a crash test needs the
            # window to exist; production installs stay atomic.
            self._connection.commit()
            self._crash_point("snapshot-installed")
        self._connection.execute("DELETE FROM journal")
        self._connection.commit()

    # -- crash simulation --------------------------------------------------

    def simulate_crash(self, *, torn_bytes: int = 0) -> None:
        self._buffer.clear()
        self._connection.rollback()
        if torn_bytes:
            # Model a torn final write by shaving bytes off the last
            # committed blob: recovery must detect the broken seal,
            # drop the record and report, exactly as with a torn file.
            row = self._connection.execute(
                "SELECT id, blob FROM journal ORDER BY id DESC LIMIT 1"
            ).fetchone()
            if row is not None:
                row_id, blob = row
                torn = bytes(blob)[: max(0, len(bytes(blob)) - torn_bytes)]
                self._connection.execute(
                    "UPDATE journal SET blob = ? WHERE id = ?",
                    (sqlite3.Binary(torn), row_id),
                )
                self._connection.commit()
        self._connection.close()
        self._connection = self._connect()

    def close(self) -> None:
        self.flush()
        self._connection.close()
