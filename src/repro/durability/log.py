"""The ``DurableLog`` interface and its plain-file backend.

A durable log is the persistence primitive of the store layer: an
**append-only journal** of sealed record blobs
(:mod:`repro.durability.records`) plus at most one **compacted snapshot**,
installed atomically.  The contract every backend honours:

* :meth:`DurableLog.append` *buffers*; :meth:`DurableLog.flush` is the
  commit point.  Records never committed are lost on a crash -- that is
  the deal, and the store layer places its flushes so that only purely
  local writes can sit in the window (see the recovery soundness record
  in ``ROADMAP.md``).
* ``fsync_every=N`` batches expensive device syncs: every Nth flush also
  fsyncs (``N=1`` is synchronous durability, the default ``None`` stops
  at the OS page cache, which survives process crashes -- the crash model
  of the simulation).
* :meth:`DurableLog.replay` returns every committed record blob whose
  seal verifies, **truncating the log to that valid prefix** when it
  finds damage: a torn tail is reported as a typed
  :class:`TailDamage`, never silently decoded and never fatal.  Damage
  that makes the artifact structurally unreadable (a snapshot failing its
  seal) raises :class:`~repro.core.errors.LogCorrupt` instead.
* :meth:`DurableLog.install_snapshot` replaces the snapshot and truncates
  the journal as one logical step, ordered so that a crash at *any*
  intermediate point recovers: the new snapshot lands atomically
  (temp-file + rename, or one SQLite transaction) before the journal
  shrinks, and journal records the snapshot already covers are skipped on
  replay by their sequence numbers.

Crash injection is first class rather than bolted on: `simulate_crash`
throws away everything after the last commit point (optionally tearing
the final committed write, like a sector that half-hit the platter), and
``crash_hook`` fires at the named points of a compaction so tests can
kill the process image between "snapshot installed" and "journal
truncated".
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..core.errors import DurabilityError, LogCorrupt
from .records import decode_record

__all__ = ["TailDamage", "DurableLog", "FileDurableLog", "CRASH_POINTS"]

_LEN = struct.Struct(">I")

#: Named points at which ``crash_hook`` fires during a compaction.  A hook
#: that raises leaves the on-disk state exactly as it was at that point --
#: the two windows a mid-compaction crash can land in.
CRASH_POINTS = ("snapshot-written", "snapshot-installed")


@dataclass(frozen=True)
class TailDamage:
    """A journal tail that failed validation and was truncated away.

    ``offset`` is where the valid prefix ends, ``dropped_bytes`` how much
    was cut, ``reason`` the typed decode failure that condemned the first
    bad record.  The data is not lost to the *system*: whatever the tail
    carried still lives on the peers it was synchronized with, and
    anti-entropy re-syncs the gap -- the recovery layer reports the
    damage precisely so that nothing is ever silently accepted.
    """

    offset: int
    dropped_bytes: int
    reason: str


class DurableLog:
    """Abstract interface of a durable journal + snapshot store.

    Concrete backends: :class:`FileDurableLog` (length-prefixed records in
    a plain file, snapshot as a sibling file) and
    :class:`~repro.durability.sqlite_log.SQLiteDurableLog` (one row per
    record).  Both store the *same sealed blobs*, so everything above this
    interface -- journaling, compaction, recovery -- is backend-agnostic.
    """

    #: Test hook fired at each named :data:`CRASH_POINTS` stage of a
    #: snapshot installation; raising from it simulates a mid-compaction
    #: crash with the on-disk state frozen at that point.
    crash_hook: Optional[Callable[[str], None]] = None

    def __init__(self, *, fsync_every: Optional[int] = None) -> None:
        if fsync_every is not None and fsync_every < 1:
            raise DurabilityError(
                f"fsync_every must be None or >= 1, got {fsync_every}"
            )
        self.fsync_every = fsync_every
        self._buffer: List[bytes] = []
        self._flushes_since_fsync = 0
        self.crash_hook = None

    # -- the append path ---------------------------------------------------

    def append(self, blob: bytes) -> None:
        """Buffer one sealed record blob; durable only after :meth:`flush`."""
        self._buffer.append(blob)

    def flush(self) -> None:
        """Commit every buffered record (the durability barrier)."""
        if self._buffer:
            blobs, self._buffer = self._buffer, []
            self._commit(blobs)
        if self.fsync_every is not None:
            self._flushes_since_fsync += 1
            if self._flushes_since_fsync >= self.fsync_every:
                self._flushes_since_fsync = 0
                self._fsync()

    @property
    def pending(self) -> int:
        """Buffered records not yet committed by :meth:`flush`."""
        return len(self._buffer)

    def _crash_point(self, point: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(point)

    # -- backend obligations ----------------------------------------------

    def _commit(self, blobs: List[bytes]) -> None:
        raise NotImplementedError

    def _fsync(self) -> None:
        raise NotImplementedError

    def replay(self) -> Tuple[List[bytes], Optional[TailDamage]]:
        """Every committed, seal-valid record blob, truncating bad tails."""
        raise NotImplementedError

    def read_snapshot(self) -> Optional[bytes]:
        """The installed snapshot blob, or ``None`` when never compacted."""
        raise NotImplementedError

    def install_snapshot(self, blob: bytes) -> None:
        """Atomically install ``blob`` as the snapshot, truncate the journal."""
        raise NotImplementedError

    def journal_bytes(self) -> int:
        """Committed journal size in bytes (monitoring and benchmarks)."""
        raise NotImplementedError

    def simulate_crash(self, *, torn_bytes: int = 0) -> None:
        """Drop everything after the last commit point, as a crash would.

        ``torn_bytes`` additionally tears that many bytes off the end of
        the *committed* journal, modelling a final write that only
        partially reached the device; recovery must truncate it away and
        report, never decode it.
        """
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "DurableLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FileDurableLog(DurableLog):
    """Plain-file backend: ``journal.log`` + ``snapshot.bin`` in one directory.

    The journal frames each sealed record blob with a big-endian ``u32``
    length.  Snapshot installation is temp-file + ``os.replace`` (atomic on
    POSIX), *then* journal truncation -- a crash between the two leaves a
    snapshot plus a journal it entirely covers, which replay resolves by
    sequence number.
    """

    JOURNAL = "journal.log"
    SNAPSHOT = "snapshot.bin"
    _SNAPSHOT_TMP = "snapshot.tmp"

    def __init__(self, path, *, fsync_every: Optional[int] = None) -> None:
        super().__init__(fsync_every=fsync_every)
        self.path = os.fspath(path)
        os.makedirs(self.path, exist_ok=True)
        self._journal_path = os.path.join(self.path, self.JOURNAL)
        self._snapshot_path = os.path.join(self.path, self.SNAPSHOT)
        # Open for append, creating an empty journal on first use; reads
        # go through separate handles so the append offset never moves.
        # Unbuffered: a commit's single write() goes straight to the OS
        # page cache, which *is* the "survives a process crash" bar --
        # a Python-side buffer between commit and kernel would weaken
        # the barrier and cost an extra flush per commit.
        self._journal = open(self._journal_path, "ab", buffering=0)

    # -- appends -----------------------------------------------------------

    def _commit(self, blobs: List[bytes]) -> None:
        chunks = []
        for blob in blobs:
            chunks.append(_LEN.pack(len(blob)))
            chunks.append(blob)
        # One raw write per commit: past this point the records survive
        # a *process* crash (they sit in the OS page cache); surviving
        # power loss is what the fsync batching below buys.
        self._journal.write(b"".join(chunks))

    def _fsync(self) -> None:
        os.fsync(self._journal.fileno())

    def journal_bytes(self) -> int:
        self._journal.flush()
        try:
            return os.path.getsize(self._journal_path)
        except OSError:
            return 0

    # -- replay ------------------------------------------------------------

    def replay(self) -> Tuple[List[bytes], Optional[TailDamage]]:
        self._journal.flush()
        with open(self._journal_path, "rb") as handle:
            data = handle.read()
        blobs: List[bytes] = []
        offset = 0
        damage: Optional[TailDamage] = None
        while offset < len(data):
            if offset + _LEN.size > len(data):
                damage = TailDamage(
                    offset=offset,
                    dropped_bytes=len(data) - offset,
                    reason="torn length prefix at end of journal",
                )
                break
            (length,) = _LEN.unpack_from(data, offset)
            start = offset + _LEN.size
            if start + length > len(data):
                damage = TailDamage(
                    offset=offset,
                    dropped_bytes=len(data) - offset,
                    reason=(
                        f"record declares {length} bytes but only "
                        f"{len(data) - start} remain (torn tail)"
                    ),
                )
                break
            blob = data[start : start + length]
            try:
                decode_record(blob)
            except LogCorrupt as exc:
                damage = TailDamage(
                    offset=offset,
                    dropped_bytes=len(data) - offset,
                    reason=str(exc),
                )
                break
            blobs.append(blob)
            offset = start + length
        if damage is not None:
            self._truncate_to(damage.offset)
        return blobs, damage

    def _truncate_to(self, offset: int) -> None:
        self._journal.flush()
        with open(self._journal_path, "r+b") as handle:
            handle.truncate(offset)
        # The append handle's position is past the cut; reopen so new
        # records land right after the valid prefix.
        self._journal.close()
        self._journal = open(self._journal_path, "ab", buffering=0)

    # -- snapshots ---------------------------------------------------------

    def read_snapshot(self) -> Optional[bytes]:
        try:
            with open(self._snapshot_path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def install_snapshot(self, blob: bytes) -> None:
        tmp = os.path.join(self.path, self._SNAPSHOT_TMP)
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            if self.fsync_every is not None:
                os.fsync(handle.fileno())
        self._crash_point("snapshot-written")
        os.replace(tmp, self._snapshot_path)
        self._crash_point("snapshot-installed")
        self._truncate_to(0)

    # -- crash simulation --------------------------------------------------

    def simulate_crash(self, *, torn_bytes: int = 0) -> None:
        self._buffer.clear()
        self._journal.flush()
        if torn_bytes:
            size = os.path.getsize(self._journal_path)
            self._truncate_to(max(0, size - torn_bytes))
        self._journal.close()
        # A crashed process holds nothing open; reopen lazily on restart.
        self._journal = open(self._journal_path, "ab", buffering=0)

    def close(self) -> None:
        self.flush()
        self._journal.close()
