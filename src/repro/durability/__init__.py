"""Durable log-structured persistence for replicated stores.

The layer that lets a replica survive restarts (PR 7): an append-only
journal of CRC-sealed records plus periodic compacted snapshots, behind
one :class:`~repro.durability.log.DurableLog` interface with two
backends (plain file, SQLite).  The snapshot *is* the wire state: every
tracker persists through its canonical envelope codec grouped into the
same batched ``"CS"`` streams the sync engine ships, so recovery is
proven equal to the pre-crash configuration by the same canonical-bytes
property the wire path relies on.

* :mod:`repro.durability.records` -- the sealed record and snapshot codecs;
* :mod:`repro.durability.log` -- the interface + plain-file backend;
* :mod:`repro.durability.sqlite_log` -- the SQLite backend;
* :mod:`repro.durability.store` -- :class:`StoreJournal`, the store-side
  journaling and compaction driver;
* :mod:`repro.durability.recovery` -- snapshot + journal-tail rebuild with
  typed :class:`RecoveryReport` (torn tails truncate and re-sync, never
  silently decode);
* :mod:`repro.durability.inspect` -- header-only artifact inspection
  (the ``repro store inspect`` subcommand).
"""

from .inspect import StoreInfo, format_report, inspect_path
from .log import CRASH_POINTS, DurableLog, FileDurableLog, TailDamage
from .records import KeyRecord, SnapshotGroup
from .recovery import RecoveryReport, rebuild, recover_replica
from .sqlite_log import SQLiteDurableLog
from .store import BACKENDS, StoreJournal, open_log

__all__ = [
    "BACKENDS",
    "CRASH_POINTS",
    "DurableLog",
    "FileDurableLog",
    "SQLiteDurableLog",
    "TailDamage",
    "KeyRecord",
    "SnapshotGroup",
    "StoreJournal",
    "StoreInfo",
    "RecoveryReport",
    "open_log",
    "rebuild",
    "recover_replica",
    "inspect_path",
    "format_report",
]
