"""repro -- Version Stamps: decentralized version vectors.

A full reproduction of *"Version Stamps — Decentralized Version Vectors"*
(Almeida, Baquero & Fonte, ICDCS 2002): the version-stamp mechanism itself,
the causal-history reference model it is proved equivalent to, the baseline
mechanisms it generalizes (version vectors, vector clocks, dynamic version
vectors, plausible clocks), the authors' later Interval Tree Clocks as the
future-work extension, an optimistic replication substrate for partitioned
and mobile operation, a PANASYNC-style file-copy dependency tracker, and a
simulation/benchmark harness that regenerates every figure of the paper.

Quick start
-----------
>>> from repro import kernel
>>> left, right = kernel.make("version-stamp").fork()
>>> left = left.event()
>>> left.compare(right).name
'AFTER'
>>> kernel.from_bytes(left.to_bytes()) == left
True

(The same four lines work for every registered family:
``kernel.families()`` lists them.)

Subpackages
-----------
* :mod:`repro.kernel` -- the public causality kernel: the
  :class:`~repro.kernel.protocol.CausalityClock` protocol, the clock-family
  registry, the epoch-tagged wire envelope and the mechanism adapters.
* :mod:`repro.core` -- bit strings, names, version stamps, frontiers,
  invariants, reduction, encoding.
* :mod:`repro.causal` -- the causal-history oracle (Section 2).
* :mod:`repro.vv` -- version vectors, vector clocks, dynamic version vectors,
  plausible clocks, identifier sources.
* :mod:`repro.itc` -- Interval Tree Clocks (the future-work extension).
* :mod:`repro.replication` -- replicas, stores, conflict policies, simulated
  partitions/mobility, anti-entropy.
* :mod:`repro.panasync` -- file-copy dependency tracking tools.
* :mod:`repro.sim` -- traces, workload generators, the lockstep runner and
  the exhaustive model checker.
* :mod:`repro.analysis` -- figure reconstructions, size sweeps, reporting.
"""

from . import kernel
from .causal import CausalConfiguration, CausalHistory
from .core import (
    BitString,
    Frontier,
    Name,
    Ordering,
    VersionStamp,
    assert_invariants,
    check_all,
)
from .itc import ITCStamp
from .replication import (
    AntiEntropy,
    MobileNode,
    PartitionedNetwork,
    Replica,
    StoreReplica,
)
from .panasync import FileCopy, Panasync
from .vv import DynamicVVSystem, PlausibleClock, VectorClock, VersionVector

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "kernel",
    "BitString",
    "Name",
    "VersionStamp",
    "Frontier",
    "Ordering",
    "check_all",
    "assert_invariants",
    "CausalHistory",
    "CausalConfiguration",
    "VersionVector",
    "VectorClock",
    "DynamicVVSystem",
    "PlausibleClock",
    "ITCStamp",
    "Replica",
    "StoreReplica",
    "MobileNode",
    "AntiEntropy",
    "PartitionedNetwork",
    "FileCopy",
    "Panasync",
]
