"""PANASYNC re-implementation: dependency tracking among file copies.

The paper's Section 7 points to PANASYNC, the authors' application of version
stamps to file replication.  This subpackage provides a Python equivalent:
stamped file copies (:mod:`~repro.panasync.filecopy`), on-disk repositories
with stamp sidecars (:mod:`~repro.panasync.repository`), and a command-style
façade mirroring the original tool set (:mod:`~repro.panasync.tools`).
"""

from .filecopy import CopyRelation, FileCopy
from .repository import CopyRepository
from .tools import Panasync, StatusLine

__all__ = ["FileCopy", "CopyRelation", "CopyRepository", "Panasync", "StatusLine"]
