"""Command-style operations mirroring the PANASYNC tool set.

The original PANASYNC project shipped small command-line tools to copy,
update, compare and merge file copies while maintaining their version stamps.
:class:`Panasync` packages the same verbs behind one object so the examples
(and a downstream CLI, if desired) can drive whole multi-repository scenarios
with a few readable calls.  Every verb returns plain data (strings, relations,
reports) rather than printing, so it is equally usable from tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..core.order import Ordering
from .filecopy import CopyRelation
from .repository import CopyRepository

__all__ = ["Panasync", "StatusLine"]


@dataclass(frozen=True)
class StatusLine:
    """One row of :meth:`Panasync.status`: a copy and how it relates to a reference."""

    repository: str
    copy_name: str
    digest: str
    relation_to_reference: Optional[Ordering]

    def render(self) -> str:
        """A human-readable one-line summary."""
        relation = (
            self.relation_to_reference.value
            if self.relation_to_reference is not None
            else "reference"
        )
        return f"{self.repository}:{self.copy_name}  digest={self.digest}  {relation}"


class Panasync:
    """A façade over one or more copy repositories."""

    def __init__(self) -> None:
        self._repositories: Dict[str, CopyRepository] = {}

    # -- repository management ------------------------------------------------

    def add_repository(self, alias: str, root: Path) -> CopyRepository:
        """Register (and create, if needed) a repository under ``alias``."""
        repository = CopyRepository(root)
        self._repositories[alias] = repository
        return repository

    def repository(self, alias: str) -> CopyRepository:
        """Look up a registered repository."""
        try:
            return self._repositories[alias]
        except KeyError:
            raise KeyError(
                f"unknown repository {alias!r}; registered: {sorted(self._repositories)}"
            ) from None

    def repositories(self) -> List[str]:
        """Aliases of every registered repository."""
        return sorted(self._repositories)

    # -- the PANASYNC verbs ------------------------------------------------------

    def create(self, repository: str, name: str, content: str = "") -> None:
        """``panasync create``: start tracking a new logical file."""
        self.repository(repository).create(name, content)

    def edit(self, repository: str, name: str, content: str) -> None:
        """``panasync edit``: modify a copy, recording the update."""
        self.repository(repository).edit(name, content)

    def copy(
        self,
        source: str,
        source_name: str,
        target: str,
        target_name: Optional[str] = None,
    ) -> None:
        """``panasync cp``: duplicate a copy, possibly across repositories."""
        self.repository(source).duplicate(
            source_name,
            target_name if target_name is not None else source_name,
            target_repository=self.repository(target),
        )

    def compare(
        self, first: str, first_name: str, second: str, second_name: str
    ) -> CopyRelation:
        """``panasync cmp``: how do two copies relate?"""
        return self.repository(first).compare(
            first_name, second_name, second_repository=self.repository(second)
        )

    def merge(
        self,
        first: str,
        first_name: str,
        second: str,
        second_name: str,
        *,
        resolver: Optional[callable] = None,
    ) -> CopyRelation:
        """``panasync merge``: reconcile two copies of the same logical file."""
        return self.repository(first).merge(
            first_name,
            second_name,
            second_repository=self.repository(second),
            resolver=resolver,
        )

    def status(
        self,
        *,
        reference: Optional[tuple] = None,
    ) -> List[StatusLine]:
        """``panasync status``: list every tracked copy everywhere.

        When ``reference=(repository, name)`` is given, each line reports how
        that copy relates to the reference copy.
        """
        reference_copy = None
        if reference is not None:
            reference_alias, reference_name = reference
            reference_copy = self.repository(reference_alias).load(reference_name)

        lines: List[StatusLine] = []
        for alias in self.repositories():
            repository = self.repository(alias)
            for name in repository.tracked_copies():
                copy = repository.load(name)
                relation = None
                if reference_copy is not None and not (
                    alias == reference[0] and name == reference[1]
                ):
                    relation = copy.compare(reference_copy).ordering
                lines.append(
                    StatusLine(
                        repository=alias,
                        copy_name=name,
                        digest=copy.digest,
                        relation_to_reference=relation,
                    )
                )
        return lines
