"""On-disk repositories of stamped file copies.

PANASYNC tracked dependencies among copies of a file living in ordinary
directories, keeping the version stamp in a sidecar.  :class:`CopyRepository`
does the same with :mod:`pathlib`: each managed copy is a regular file plus a
``<name>.stamp.json`` sidecar holding the serialized version stamp and the
logical file name.  Repositories can exchange copies with each other (a
"floppy disk" or "laptop" transfer) and reconcile them later, all without a
central registry.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from ..core.encoding import stamp_from_json, stamp_to_json
from ..core.errors import ReplicationError
from .filecopy import CopyRelation, FileCopy

__all__ = ["CopyRepository"]

_SIDECAR_SUFFIX = ".stamp.json"


class CopyRepository:
    """A directory of version-stamped file copies."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- sidecar handling ------------------------------------------------------

    def _sidecar_path(self, name: str) -> Path:
        return self.root / f"{name}{_SIDECAR_SUFFIX}"

    def _file_path(self, name: str) -> Path:
        return self.root / name

    def _save(self, name: str, copy: FileCopy) -> None:
        self._file_path(name).write_text(copy.content, encoding="utf-8")
        sidecar = {
            "logical_name": copy.logical_name,
            "copy_name": copy.copy_name,
            "stamp": stamp_to_json(copy.stamp),
        }
        self._sidecar_path(name).write_text(json.dumps(sidecar, indent=2), encoding="utf-8")

    def _load(self, name: str) -> FileCopy:
        file_path = self._file_path(name)
        sidecar_path = self._sidecar_path(name)
        if not file_path.exists() or not sidecar_path.exists():
            raise ReplicationError(
                f"{name!r} is not a tracked copy in repository {self.root}"
            )
        sidecar = json.loads(sidecar_path.read_text(encoding="utf-8"))
        copy = FileCopy(
            sidecar["logical_name"],
            file_path.read_text(encoding="utf-8"),
            stamp=stamp_from_json(sidecar["stamp"]),
            copy_name=sidecar["copy_name"],
        )
        return copy

    # -- public API ------------------------------------------------------

    def tracked_copies(self) -> List[str]:
        """Names of the copies tracked in this repository."""
        names = []
        for sidecar in sorted(self.root.glob(f"*{_SIDECAR_SUFFIX}")):
            names.append(sidecar.name[: -len(_SIDECAR_SUFFIX)])
        return names

    def create(self, name: str, content: str = "", *, logical_name: Optional[str] = None) -> FileCopy:
        """Start tracking a brand new logical file as copy ``name``."""
        if name in self.tracked_copies():
            raise ReplicationError(f"copy {name!r} already exists in {self.root}")
        copy = FileCopy(logical_name or name, content, copy_name=name)
        self._save(name, copy)
        return copy

    def load(self, name: str) -> FileCopy:
        """Load a tracked copy (content + stamp)."""
        return self._load(name)

    def store(self, name: str, copy: FileCopy) -> None:
        """Persist a (possibly modified) copy under ``name``."""
        self._save(name, copy)

    def edit(self, name: str, new_content: str) -> FileCopy:
        """Edit a tracked copy in place (records an update in its stamp)."""
        copy = self._load(name)
        copy.edit(new_content)
        self._save(name, copy)
        return copy

    def duplicate(
        self,
        source_name: str,
        target_name: str,
        *,
        target_repository: Optional["CopyRepository"] = None,
    ) -> FileCopy:
        """Copy a tracked file, possibly into another repository.

        Both the source stamp and the new copy's stamp are re-written, since
        duplication forks the source identity.
        """
        target_repo = target_repository if target_repository is not None else self
        if target_name in target_repo.tracked_copies():
            raise ReplicationError(
                f"copy {target_name!r} already exists in {target_repo.root}"
            )
        source = self._load(source_name)
        clone = source.duplicate(copy_name=target_name)
        self._save(source_name, source)
        target_repo._save(target_name, clone)
        return clone

    def compare(
        self,
        first_name: str,
        second_name: str,
        *,
        second_repository: Optional["CopyRepository"] = None,
    ) -> CopyRelation:
        """Compare two tracked copies without modifying them."""
        second_repo = second_repository if second_repository is not None else self
        first = self._load(first_name)
        second = second_repo._load(second_name)
        return first.compare(second)

    def merge(
        self,
        first_name: str,
        second_name: str,
        *,
        second_repository: Optional["CopyRepository"] = None,
        resolver: Optional[callable] = None,
    ) -> CopyRelation:
        """Reconcile two tracked copies; both files end up identical."""
        second_repo = second_repository if second_repository is not None else self
        first = self._load(first_name)
        second = second_repo._load(second_name)
        relation = first.merge(second, resolver=resolver)
        self._save(first_name, first)
        second_repo._save(second_name, second)
        return relation
