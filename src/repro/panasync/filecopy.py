"""Stamped file copies, in the spirit of the PANASYNC project.

Section 7 of the paper mentions PANASYNC, the authors' application of version
stamps to dependency tracking among copies of a single file (a C++/STL
library plus command-line tools).  We re-implement the concept in Python:

* a :class:`FileCopy` is one copy of a logical file, carrying its content,
  a content digest, and a version stamp;
* copies are created by :meth:`FileCopy.duplicate` (a fork of the stamp),
  edited with :meth:`FileCopy.edit` (an update), and reconciled with
  :meth:`FileCopy.merge` (a join);
* comparing two copies answers the user-facing question PANASYNC answers:
  are these copies the same version, is one outdated, or have they diverged?

The copies are in-memory objects; :mod:`repro.panasync.repository` persists
them in a directory layout similar to the original tool's sidecar files.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.order import Ordering
from ..core.stamp import VersionStamp

__all__ = ["FileCopy", "CopyRelation"]

_copy_counter = itertools.count(1)


def _digest(content: str) -> str:
    """A short, stable digest of the file content."""
    return hashlib.sha256(content.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CopyRelation:
    """The human-facing verdict of comparing two file copies."""

    ordering: Ordering
    description: str

    @property
    def diverged(self) -> bool:
        """True when the copies hold conflicting edits."""
        return self.ordering is Ordering.CONCURRENT


class FileCopy:
    """One copy of a logical file, tracked with a version stamp."""

    def __init__(
        self,
        logical_name: str,
        content: str = "",
        *,
        stamp: Optional[VersionStamp] = None,
        copy_name: Optional[str] = None,
    ) -> None:
        self.logical_name = logical_name
        self.copy_name = copy_name if copy_name is not None else f"copy-{next(_copy_counter)}"
        self._content = content
        self._stamp = stamp if stamp is not None else VersionStamp.seed()
        self._edits = 0

    # -- inspection ------------------------------------------------------

    @property
    def content(self) -> str:
        """The current file content."""
        return self._content

    @property
    def stamp(self) -> VersionStamp:
        """The version stamp of this copy."""
        return self._stamp

    @property
    def digest(self) -> str:
        """Digest of the current content."""
        return _digest(self._content)

    @property
    def edits(self) -> int:
        """Number of local edits made to this copy."""
        return self._edits

    def __repr__(self) -> str:
        return (
            f"FileCopy({self.logical_name!r}, copy={self.copy_name!r}, "
            f"digest={self.digest}, stamp={self._stamp})"
        )

    # -- operations ----------------------------------------------------------

    def edit(self, new_content: str) -> None:
        """Modify the file locally; the edit is recorded in the stamp."""
        self._content = new_content
        self._stamp = self._stamp.update()
        self._edits += 1

    def append(self, text: str) -> None:
        """Convenience: append text as a local edit."""
        self.edit(self._content + text)

    def duplicate(self, copy_name: Optional[str] = None) -> "FileCopy":
        """Create a new copy of this file (e.g. `cp` onto a laptop).

        The stamp is forked, so both copies keep autonomous identities and
        future edits on either side are tracked independently -- no server or
        registry is consulted, which is the PANASYNC use case.
        """
        mine, theirs = self._stamp.fork()
        self._stamp = mine
        clone = FileCopy(
            self.logical_name,
            self._content,
            stamp=theirs,
            copy_name=copy_name,
        )
        return clone

    def compare(self, other: "FileCopy") -> CopyRelation:
        """How this copy relates to another copy of the same logical file."""
        ordering = self._stamp.compare(other._stamp)
        if ordering is Ordering.EQUAL:
            description = "the copies hold the same version"
        elif ordering is Ordering.BEFORE:
            description = f"{self.copy_name} is outdated relative to {other.copy_name}"
        elif ordering is Ordering.AFTER:
            description = f"{other.copy_name} is outdated relative to {self.copy_name}"
        else:
            description = "the copies have diverged (conflicting edits)"
        return CopyRelation(ordering, description)

    def merge(
        self,
        other: "FileCopy",
        *,
        resolver: Optional[callable] = None,
    ) -> CopyRelation:
        """Reconcile with another copy; both end up with identical content.

        Causally ordered copies merge silently (the newer content wins).  For
        diverged copies the ``resolver`` callable receives both contents and
        must return the merged content; without one, the two contents are
        concatenated with conflict markers so no edit is silently lost.
        """
        relation = self.compare(other)
        if relation.ordering is Ordering.BEFORE:
            merged_content = other._content
        elif relation.ordering in (Ordering.AFTER, Ordering.EQUAL):
            merged_content = self._content
        elif resolver is not None:
            merged_content = resolver(self._content, other._content)
        else:
            merged_content = (
                f"<<<<<<< {self.copy_name}\n{self._content}\n"
                f"=======\n{other._content}\n>>>>>>> {other.copy_name}\n"
            )

        joined = self._stamp.join(other._stamp)
        if relation.ordering is Ordering.CONCURRENT:
            # The merge result is a new version dominating both inputs.
            joined = joined.update()
        mine, theirs = joined.fork()
        self._stamp = mine
        other._stamp = theirs
        self._content = merged_content
        other._content = merged_content
        return relation

    def metadata_size_in_bits(self) -> int:
        """Encoded size of this copy's stamp."""
        return self._stamp.size_in_bits()
