"""Causal histories: sets of update events and their inclusion pre-order.

A causal history is simply the set of update events known to an element
(Section 2).  Comparing two frontier elements compares their histories by set
inclusion, which yields the three situations of interest: equivalence,
obsolescence and mutual inconsistency.

:class:`CausalHistory` is a thin immutable wrapper over a frozenset that adds
the comparison vocabulary shared by every mechanism in the library, so the
lockstep runner can treat the oracle and the stamps uniformly.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Iterator

from ..core.order import Ordering, ordering_from_sets
from .events import UpdateEvent

__all__ = ["CausalHistory"]


class CausalHistory:
    """An immutable set of update events with inclusion-based comparison."""

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[UpdateEvent] = ()) -> None:
        object.__setattr__(self, "_events", frozenset(events))

    # -- constructors -------------------------------------------------

    @classmethod
    def empty(cls) -> "CausalHistory":
        """The history of a freshly created system: no updates seen."""
        return _EMPTY

    # -- protocol -------------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CausalHistory instances are immutable")

    @property
    def events(self) -> FrozenSet[UpdateEvent]:
        """The underlying frozen set of events."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[UpdateEvent]:
        return iter(sorted(self._events))

    def __contains__(self, event: object) -> bool:
        return event in self._events

    def __bool__(self) -> bool:
        return bool(self._events)

    def __hash__(self) -> int:
        return hash(("CausalHistory", self._events))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CausalHistory):
            return self._events == other._events
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(str(event) for event in sorted(self._events))
        return f"CausalHistory({{{body}}})"

    # -- evolution --------------------------------------------------------

    def with_event(self, event: UpdateEvent) -> "CausalHistory":
        """Return the history extended with one new update event."""
        return CausalHistory(self._events | {event})

    def union(self, other: "CausalHistory") -> "CausalHistory":
        """The combined knowledge of two histories (used by ``join``)."""
        return CausalHistory(self._events | other._events)

    def __or__(self, other: "CausalHistory") -> "CausalHistory":
        if not isinstance(other, CausalHistory):
            return NotImplemented
        return self.union(other)

    # -- comparison --------------------------------------------------------

    def leq(self, other: "CausalHistory") -> bool:
        """Inclusion: every event of ``self`` is known to ``other``."""
        return self._events <= other._events

    def __le__(self, other: "CausalHistory") -> bool:
        if not isinstance(other, CausalHistory):
            return NotImplemented
        return self.leq(other)

    def __lt__(self, other: "CausalHistory") -> bool:
        if not isinstance(other, CausalHistory):
            return NotImplemented
        return self._events < other._events

    def compare(self, other: "CausalHistory") -> Ordering:
        """Three-way comparison by set inclusion (the Section 2 queries)."""
        return ordering_from_sets(self._events, other._events)

    def equivalent(self, other: "CausalHistory") -> bool:
        """Both elements have seen exactly the same updates."""
        return self._events == other._events

    def obsolete_relative_to(self, other: "CausalHistory") -> bool:
        """``other`` has seen every update of ``self`` plus at least one more."""
        return self._events < other._events

    def inconsistent_with(self, other: "CausalHistory") -> bool:
        """Each side has seen at least one update unknown to the other."""
        return not (self._events <= other._events) and not (
            other._events <= self._events
        )


_EMPTY = CausalHistory()
