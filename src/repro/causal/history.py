"""Causal histories packed into single integers, with inclusion comparison.

A causal history is simply the set of update events known to an element
(Section 2).  Comparing two frontier elements compares their histories by set
inclusion, which yields the three situations of interest: equivalence,
obsolescence and mutual inconsistency.

Representation
--------------
Event indices are dense (see :mod:`repro.causal.events`), so a history is
stored as one arbitrary-precision Python ``int`` whose bit ``i`` is set iff
event ``i`` belongs to the history:

==========================  =============================  ================
operation                   packed implementation           complexity
==========================  =============================  ================
``with_event`` / ``union``  ``bits | other``                O(n/64) words
``leq`` (inclusion)         ``a & b == a``                  O(n/64) words
``compare``                 identity test, then ``&``       O(n/64) words
``len`` / ``event_count``   ``bit_count()``                 O(n/64) words
``==`` / ``hash``           identity / cached int hash      O(1) amortized
==========================  =============================  ================

(The seed implementation stored ``frozenset[UpdateEvent]``; every one of the
operations above hashed and re-bucketed event objects, and iteration
re-sorted the set on each call.  That implementation is retained verbatim in
:mod:`repro.causal.refhistory` as the differential-test oracle.)

Instances are *interned* by their packed value: structurally equal histories
are pointer-equal, so ``compare`` starts with an identity fast path and
``dict``/``set`` membership degenerates to pointer hashing — the same
playbook :class:`repro.core.bitstring.BitString` uses.  The sorted event view
and the hash are computed lazily on first use and cached, since histories are
immutable.
"""

from __future__ import annotations

import weakref
from typing import FrozenSet, Iterable, Iterator, Optional, Tuple, Union

from ..core.order import Ordering
from .events import UpdateEvent, materialize, register_label

__all__ = ["CausalHistory"]

try:  # int.bit_count is Python >= 3.10; fall back for 3.9.
    _bit_count = int.bit_count
except AttributeError:  # pragma: no cover - exercised only on old Pythons
    def _bit_count(value: int) -> int:
        return bin(value).count("1")

#: Intern table: packed bits -> the unique live CausalHistory carrying them.
_INTERN: "weakref.WeakValueDictionary[int, CausalHistory]" = (
    weakref.WeakValueDictionary()
)


class CausalHistory:
    """An immutable set of update events packed into one integer.

    Accepts an iterable of :class:`UpdateEvent` views or bare integer
    indices.  Construction interns by packed value, so ``CausalHistory(x)``
    and ``CausalHistory(y)`` are the *same object* whenever they denote the
    same event set.
    """

    __slots__ = ("_bits", "_count", "_hash", "_view", "__weakref__")

    def __new__(
        cls, events: Iterable[Union[UpdateEvent, int]] = ()
    ) -> "CausalHistory":
        bits = 0
        for event in events:
            if isinstance(event, UpdateEvent):
                if event.label:
                    register_label(event.sequence, event.label)
                bits |= 1 << event.sequence
            else:
                bits |= 1 << event
        return cls._from_bits(bits)

    @classmethod
    def _from_bits(cls, bits: int) -> "CausalHistory":
        self = _INTERN.get(bits)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "_bits", bits)
            object.__setattr__(self, "_count", None)
            object.__setattr__(self, "_hash", None)
            object.__setattr__(self, "_view", None)
            _INTERN[bits] = self
        return self

    # -- constructors -------------------------------------------------

    @classmethod
    def empty(cls) -> "CausalHistory":
        """The history of a freshly created system: no updates seen."""
        return _EMPTY

    @classmethod
    def from_bits(cls, bits: int) -> "CausalHistory":
        """Wrap an already-packed event bitset (bit ``i`` = event ``i``)."""
        if bits < 0:
            raise ValueError("event bitsets are non-negative integers")
        return cls._from_bits(bits)

    # -- protocol -------------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CausalHistory instances are immutable")

    @property
    def bits(self) -> int:
        """The packed event bitset (bit ``i`` set iff event ``i`` is known)."""
        return self._bits

    @property
    def event_count(self) -> int:
        """Number of events in the history (``bit_count``, cached)."""
        count = self._count
        if count is None:
            count = _bit_count(self._bits)
            object.__setattr__(self, "_count", count)
        return count

    @property
    def events(self) -> FrozenSet[UpdateEvent]:
        """The events as a frozen set of :class:`UpdateEvent` views."""
        return frozenset(self._materialized())

    def _materialized(self) -> Tuple[UpdateEvent, ...]:
        """Sorted tuple of event views, built once and cached (immutable)."""
        view = self._view
        if view is None:
            bits = self._bits
            out = []
            while bits:
                low = bits & -bits
                bits ^= low
                out.append(materialize(low.bit_length() - 1))
            view = tuple(out)
            object.__setattr__(self, "_view", view)
        return view

    def __len__(self) -> int:
        return self.event_count

    def __iter__(self) -> Iterator[UpdateEvent]:
        return iter(self._materialized())

    def __contains__(self, event: object) -> bool:
        if isinstance(event, UpdateEvent):
            return bool((self._bits >> event.sequence) & 1)
        return False

    def __bool__(self) -> bool:
        return bool(self._bits)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("CausalHistory", self._bits))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, CausalHistory):
            return self._bits == other._bits
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(str(event) for event in self._materialized())
        return f"CausalHistory({{{body}}})"

    # -- evolution --------------------------------------------------------

    def with_event(self, event: Union[UpdateEvent, int]) -> "CausalHistory":
        """Return the history extended with one new update event."""
        if isinstance(event, UpdateEvent):
            if event.label:
                register_label(event.sequence, event.label)
            index = event.sequence
        else:
            index = event
        return CausalHistory._from_bits(self._bits | (1 << index))

    def union(self, other: "CausalHistory") -> "CausalHistory":
        """The combined knowledge of two histories (used by ``join``)."""
        if self is other:
            return self
        return CausalHistory._from_bits(self._bits | other._bits)

    def __or__(self, other: "CausalHistory") -> "CausalHistory":
        if not isinstance(other, CausalHistory):
            return NotImplemented
        return self.union(other)

    # -- comparison --------------------------------------------------------

    def leq(self, other: "CausalHistory") -> bool:
        """Inclusion: every event of ``self`` is known to ``other``."""
        bits = self._bits
        return bits & other._bits == bits

    def __le__(self, other: "CausalHistory") -> bool:
        if not isinstance(other, CausalHistory):
            return NotImplemented
        return self.leq(other)

    def __lt__(self, other: "CausalHistory") -> bool:
        if not isinstance(other, CausalHistory):
            return NotImplemented
        return self._bits != other._bits and self.leq(other)

    def compare(self, other: "CausalHistory") -> Ordering:
        """Three-way comparison by set inclusion (the Section 2 queries)."""
        if self is other:
            return Ordering.EQUAL
        a = self._bits
        b = other._bits
        if a == b:
            return Ordering.EQUAL
        intersection = a & b
        if intersection == a:
            return Ordering.BEFORE
        if intersection == b:
            return Ordering.AFTER
        return Ordering.CONCURRENT

    def equivalent(self, other: "CausalHistory") -> bool:
        """Both elements have seen exactly the same updates."""
        return self is other or self._bits == other._bits

    def obsolete_relative_to(self, other: "CausalHistory") -> bool:
        """``other`` has seen every update of ``self`` plus at least one more."""
        return self._bits != other._bits and self.leq(other)

    def inconsistent_with(self, other: "CausalHistory") -> bool:
        """Each side has seen at least one update unknown to the other."""
        intersection = self._bits & other._bits
        return intersection != self._bits and intersection != other._bits


_EMPTY = CausalHistory()
