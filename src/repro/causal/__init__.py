"""Causal histories -- the global-view reference model of Section 2.

This subpackage is the *oracle* of the reproduction: it implements the causal
history model exactly as the paper defines it (globally unique update events,
set-inclusion comparison, configurations evolved by update/fork/join) and is
used by the tests, the exhaustive model checker and the benchmarks to verify
that version stamps induce the same order on every frontier
(Proposition 5.1 / Corollary 5.2).
"""

from .configuration import CausalConfiguration
from .events import EventSource, UpdateEvent
from .history import CausalHistory

__all__ = ["CausalConfiguration", "CausalHistory", "EventSource", "UpdateEvent"]
