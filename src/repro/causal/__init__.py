"""Causal histories -- the global-view reference model of Section 2.

This subpackage is the *oracle* of the reproduction: it implements the causal
history model exactly as the paper defines it (globally unique update events,
set-inclusion comparison, configurations evolved by update/fork/join) and is
used by the tests, the exhaustive model checker and the benchmarks to verify
that version stamps induce the same order on every frontier
(Proposition 5.1 / Corollary 5.2).

Two implementations live here:

* the production oracle (:mod:`~repro.causal.history`,
  :mod:`~repro.causal.configuration`): event identities are dense integer
  indices handed out by the :class:`EventSource` arena and a history is one
  packed Python ``int`` (union = ``|``, inclusion = ``&``-compare, size =
  ``bit_count``), interned so equal histories are pointer-equal;
* the seed frozenset implementation (:mod:`~repro.causal.refhistory`),
  retained verbatim for differential testing and as the perf baseline of the
  ``lockstep`` section in ``benchmarks/perf_snapshot.py``.
"""

from .configuration import CausalConfiguration
from .events import EventSource, UpdateEvent, label_of, materialize
from .history import CausalHistory
from .refhistory import RefCausalConfiguration, RefCausalHistory

__all__ = [
    "CausalConfiguration",
    "CausalHistory",
    "EventSource",
    "UpdateEvent",
    "RefCausalConfiguration",
    "RefCausalHistory",
    "label_of",
    "materialize",
]
