"""Frozenset-based reference implementation of causal histories.

This module preserves the *seed* oracle's semantics and data structures:
a causal history is a ``frozenset[UpdateEvent]``, comparison is Python set
inclusion, configurations rebuild sets on every union.  It exists for the
same two purposes as :mod:`repro.core.refimpl` does for the stamp core:

* **Differential testing** -- ``tests/causal/test_refhistory_differential.py``
  replays identical traces through the packed-bitset oracle
  (:mod:`repro.causal.history` / :mod:`~repro.causal.configuration`) and
  through this module, asserting identical orderings, matrices, dominance
  relations and lockstep agreement reports.  Any divergence is a bug in the
  bitset representation.
* **Perf baseline** -- ``benchmarks/perf_snapshot.py`` measures lockstep
  trace throughput with the bitset oracle *against* this module, so the
  oracle speedup is tracked release over release instead of silently
  regressing.

It is deliberately simple and slow; nothing outside tests and benchmarks
should import it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..core.errors import FrontierError
from ..core.order import Ordering, ordering_from_sets
from .events import EventSource, UpdateEvent

__all__ = ["RefCausalHistory", "RefCausalConfiguration"]


class RefCausalHistory:
    """An immutable set of update events with inclusion-based comparison.

    This is the seed implementation of :class:`repro.causal.history.CausalHistory`
    kept verbatim: a thin wrapper over a frozenset, with no interning, no
    cached hash and a re-sorting ``__iter__``.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[UpdateEvent] = ()) -> None:
        object.__setattr__(self, "_events", frozenset(events))

    # -- constructors -------------------------------------------------

    @classmethod
    def empty(cls) -> "RefCausalHistory":
        """The history of a freshly created system: no updates seen."""
        return _EMPTY

    # -- protocol -------------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RefCausalHistory instances are immutable")

    @property
    def events(self) -> FrozenSet[UpdateEvent]:
        """The underlying frozen set of events."""
        return self._events

    @property
    def event_count(self) -> int:
        """Number of events in the history (API parity with the bitset class)."""
        return len(self._events)

    @property
    def bits(self) -> int:
        """The packed bitset equivalent (API parity; built on demand)."""
        packed = 0
        for event in self._events:
            packed |= 1 << event.sequence
        return packed

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[UpdateEvent]:
        return iter(sorted(self._events))

    def __contains__(self, event: object) -> bool:
        return event in self._events

    def __bool__(self) -> bool:
        return bool(self._events)

    def __hash__(self) -> int:
        return hash(("CausalHistory", self._events))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RefCausalHistory):
            return self._events == other._events
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(str(event) for event in sorted(self._events))
        return f"RefCausalHistory({{{body}}})"

    # -- evolution --------------------------------------------------------

    def with_event(self, event: UpdateEvent) -> "RefCausalHistory":
        """Return the history extended with one new update event."""
        return RefCausalHistory(self._events | {event})

    def union(self, other: "RefCausalHistory") -> "RefCausalHistory":
        """The combined knowledge of two histories (used by ``join``)."""
        return RefCausalHistory(self._events | other._events)

    def __or__(self, other: "RefCausalHistory") -> "RefCausalHistory":
        if not isinstance(other, RefCausalHistory):
            return NotImplemented
        return self.union(other)

    # -- comparison --------------------------------------------------------

    def leq(self, other: "RefCausalHistory") -> bool:
        """Inclusion: every event of ``self`` is known to ``other``."""
        return self._events <= other._events

    def __le__(self, other: "RefCausalHistory") -> bool:
        if not isinstance(other, RefCausalHistory):
            return NotImplemented
        return self.leq(other)

    def __lt__(self, other: "RefCausalHistory") -> bool:
        if not isinstance(other, RefCausalHistory):
            return NotImplemented
        return self._events < other._events

    def compare(self, other: "RefCausalHistory") -> Ordering:
        """Three-way comparison by set inclusion (the Section 2 queries)."""
        return ordering_from_sets(self._events, other._events)

    def equivalent(self, other: "RefCausalHistory") -> bool:
        """Both elements have seen exactly the same updates."""
        return self._events == other._events

    def obsolete_relative_to(self, other: "RefCausalHistory") -> bool:
        """``other`` has seen every update of ``self`` plus at least one more."""
        return self._events < other._events

    def inconsistent_with(self, other: "RefCausalHistory") -> bool:
        """Each side has seen at least one update unknown to the other."""
        return not (self._events <= other._events) and not (
            other._events <= self._events
        )


_EMPTY = RefCausalHistory()


class RefCausalConfiguration:
    """The seed :class:`~repro.causal.configuration.CausalConfiguration`:
    label -> frozenset histories, sets rebuilt on every union."""

    def __init__(
        self,
        histories: Optional[Mapping[str, RefCausalHistory]] = None,
        *,
        events: Optional[EventSource] = None,
    ) -> None:
        self._histories: Dict[str, RefCausalHistory] = dict(histories or {})
        self._events = events if events is not None else EventSource()

    # -- constructors -------------------------------------------------

    @classmethod
    def initial(
        cls, label: str = "a", *, events: Optional[EventSource] = None
    ) -> "RefCausalConfiguration":
        """The initial configuration ``{label ↦ {}}`` of Definition 2.1."""
        configuration = cls(events=events)
        configuration._histories[label] = RefCausalHistory.empty()
        return configuration

    # -- mapping protocol -----------------------------------------------

    def __len__(self) -> int:
        return len(self._histories)

    def __iter__(self) -> Iterator[str]:
        return iter(self._histories)

    def __contains__(self, label: object) -> bool:
        return label in self._histories

    def __getitem__(self, label: str) -> RefCausalHistory:
        return self.history_of(label)

    def labels(self) -> List[str]:
        """The labels of the coexisting elements, in insertion order."""
        return list(self._histories)

    def histories(self) -> Dict[str, RefCausalHistory]:
        """A copy of the label → history mapping."""
        return dict(self._histories)

    def histories_view(self) -> Mapping[str, RefCausalHistory]:
        """The live label → history mapping (read-only; API parity)."""
        return self._histories

    def history_of(self, label: str) -> RefCausalHistory:
        """The causal history of ``label`` (raises for unknown labels)."""
        try:
            return self._histories[label]
        except KeyError:
            raise FrontierError(
                f"element {label!r} is not part of the current configuration "
                f"(elements: {sorted(self._histories)})"
            ) from None

    def all_events(self) -> FrozenSet[UpdateEvent]:
        """The union of every element's history (the paper's ``E(C)``)."""
        union: set = set()
        for history in self._histories.values():
            union |= history.events
        return frozenset(union)

    @property
    def event_source(self) -> EventSource:
        """The shared global event source (the oracle's global view)."""
        return self._events

    def __repr__(self) -> str:
        body = ", ".join(
            f"{label}: {sorted(str(e) for e in history.events)}"
            for label, history in self._histories.items()
        )
        return f"RefCausalConfiguration({{{body}}})"

    # -- transformations of Definition 2.1 -----------------------------------

    def _fresh_label(self, base: str) -> str:
        candidate = base
        while candidate in self._histories:
            candidate += "'"
        return candidate

    def update(self, label: str, new_label: Optional[str] = None) -> str:
        """``update(label)``: add a globally fresh event to the history."""
        history = self.history_of(label)
        target = new_label if new_label is not None else self._fresh_label(label + "'")
        if target != label and target in self._histories:
            raise FrontierError(f"element {target!r} already exists")
        event = self._events.fresh(label)
        del self._histories[label]
        self._histories[target] = history.with_event(event)
        return target

    def fork(
        self,
        label: str,
        left_label: Optional[str] = None,
        right_label: Optional[str] = None,
    ) -> Tuple[str, str]:
        """``fork(label)``: two elements, both inheriting the full history."""
        history = self.history_of(label)
        left = left_label if left_label is not None else self._fresh_label(label + "0")
        del self._histories[label]
        right = (
            right_label if right_label is not None else self._fresh_label(label + "1")
        )
        if left == right:
            raise FrontierError("fork children must have distinct labels")
        for target in (left, right):
            if target in self._histories:
                raise FrontierError(f"element {target!r} already exists")
        self._histories[left] = history
        self._histories[right] = history
        return left, right

    def join(self, first: str, second: str, new_label: Optional[str] = None) -> str:
        """``join(first, second)``: one element with the union of histories."""
        if first == second:
            raise FrontierError("cannot join an element with itself")
        first_history = self.history_of(first)
        second_history = self.history_of(second)
        target = (
            new_label
            if new_label is not None
            else self._fresh_label(f"{first}{second}")
        )
        del self._histories[first]
        del self._histories[second]
        if target in self._histories:
            raise FrontierError(f"element {target!r} already exists")
        self._histories[target] = first_history.union(second_history)
        return target

    def sync(
        self,
        first: str,
        second: str,
        left_label: Optional[str] = None,
        right_label: Optional[str] = None,
    ) -> Tuple[str, str]:
        """Synchronization as join-then-fork (Section 1.1)."""
        joined = self.join(first, second)
        return self.fork(
            joined,
            left_label if left_label is not None else first,
            right_label if right_label is not None else second,
        )

    # -- queries -----------------------------------------------------------------

    def compare(self, first: str, second: str) -> Ordering:
        """Three-way comparison of two elements by history inclusion."""
        return self.history_of(first).compare(self.history_of(second))

    def equivalent(self, first: str, second: str) -> bool:
        """Section 2 equivalence: identical histories."""
        return self.compare(first, second) is Ordering.EQUAL

    def obsolete(self, first: str, second: str) -> bool:
        """Section 2 obsolescence of ``first`` relative to ``second``."""
        return self.compare(first, second) is Ordering.BEFORE

    def inconsistent(self, first: str, second: str) -> bool:
        """Section 2 mutual inconsistency."""
        return self.compare(first, second) is Ordering.CONCURRENT

    def ordering_matrix(self) -> Dict[Tuple[str, str], Ordering]:
        """All pairwise comparisons of the current configuration."""
        labels = self.labels()
        matrix: Dict[Tuple[str, str], Ordering] = {}
        for x in labels:
            for y in labels:
                if x != y:
                    matrix[(x, y)] = self.compare(x, y)
        return matrix

    def dominated_by_set(self, label: str, others: Iterable[str]) -> bool:
        """Whether ``C(label) ⊆ ∪ C[others]`` (the relation of Prop. 5.1)."""
        union: set = set()
        for other in others:
            union |= self.history_of(other).events
        return self.history_of(label).events <= union

    def copy(self) -> "RefCausalConfiguration":
        """A copy sharing the same event source (histories are immutable)."""
        return RefCausalConfiguration(self._histories, events=self._events)
