"""Configurations of causal histories (Definition 2.1).

:class:`CausalConfiguration` mirrors :class:`~repro.core.frontier.Frontier`
but carries causal histories instead of version stamps: it maps the labels of
the currently coexisting elements to the set of update events each has seen,
and evolves through the same ``update`` / ``fork`` / ``join`` transformations.
It is the *oracle* of the reproduction: Proposition 5.1 states (and our tests
and benchmarks verify) that the pre-order it induces on any frontier equals
the one induced by version stamps.

Unlike stamps, the oracle requires a globally shared :class:`EventSource` --
this is exactly the "global view" the paper's mechanism eliminates.

Histories are packed-int bitsets (see :mod:`repro.causal.history`), so the
aggregate queries here -- ``all_events``, ``dominated_by_set``,
``ordering_matrix`` -- are a handful of big-int ``|``/``&`` operations
instead of rebuilding Python sets.  The seed frozenset implementation is
retained in :mod:`repro.causal.refhistory` for differential testing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..core.errors import FrontierError
from ..core.order import Ordering
from .events import EventSource, UpdateEvent
from .history import CausalHistory

__all__ = ["CausalConfiguration"]


class CausalConfiguration:
    """A mutable configuration mapping element labels to causal histories."""

    def __init__(
        self,
        histories: Optional[Mapping[str, CausalHistory]] = None,
        *,
        events: Optional[EventSource] = None,
    ) -> None:
        self._histories: Dict[str, CausalHistory] = dict(histories or {})
        self._events = events if events is not None else EventSource()

    # -- constructors -------------------------------------------------

    @classmethod
    def initial(
        cls, label: str = "a", *, events: Optional[EventSource] = None
    ) -> "CausalConfiguration":
        """The initial configuration ``{label ↦ {}}`` of Definition 2.1."""
        configuration = cls(events=events)
        configuration._histories[label] = CausalHistory.empty()
        return configuration

    # -- mapping protocol -----------------------------------------------

    def __len__(self) -> int:
        return len(self._histories)

    def __iter__(self) -> Iterator[str]:
        return iter(self._histories)

    def __contains__(self, label: object) -> bool:
        return label in self._histories

    def __getitem__(self, label: str) -> CausalHistory:
        return self.history_of(label)

    def labels(self) -> List[str]:
        """The labels of the coexisting elements, in insertion order."""
        return list(self._histories)

    def histories(self) -> Dict[str, CausalHistory]:
        """A copy of the label → history mapping."""
        return dict(self._histories)

    def histories_view(self) -> Mapping[str, CausalHistory]:
        """The live label → history mapping (read-only; do not mutate).

        Hot-path accessor for the lockstep runner: comparing two elements
        through this view is one dict lookup per side plus a bitset compare,
        with no per-call copying.
        """
        return self._histories

    def history_of(self, label: str) -> CausalHistory:
        """The causal history of ``label`` (raises for unknown labels)."""
        try:
            return self._histories[label]
        except KeyError:
            raise FrontierError(
                f"element {label!r} is not part of the current configuration "
                f"(elements: {sorted(self._histories)})"
            ) from None

    def all_events_bits(self) -> int:
        """The union of every element's history as one packed bitset."""
        union = 0
        for history in self._histories.values():
            union |= history.bits
        return union

    def all_events(self) -> FrozenSet[UpdateEvent]:
        """The union of every element's history (the paper's ``E(C)``)."""
        return CausalHistory.from_bits(self.all_events_bits()).events

    @property
    def event_source(self) -> EventSource:
        """The shared global event source (the oracle's global view)."""
        return self._events

    def __repr__(self) -> str:
        body = ", ".join(
            f"{label}: {sorted(str(e) for e in history.events)}"
            for label, history in self._histories.items()
        )
        return f"CausalConfiguration({{{body}}})"

    # -- transformations of Definition 2.1 -----------------------------------

    def _fresh_label(self, base: str) -> str:
        candidate = base
        while candidate in self._histories:
            candidate += "'"
        return candidate

    def update(self, label: str, new_label: Optional[str] = None) -> str:
        """``update(label)``: add a globally fresh event to the history."""
        history = self.history_of(label)
        target = new_label if new_label is not None else self._fresh_label(label + "'")
        if target != label and target in self._histories:
            raise FrontierError(f"element {target!r} already exists")
        event_index = self._events.fresh_index(label)
        del self._histories[label]
        self._histories[target] = history.with_event(event_index)
        return target

    def fork(
        self,
        label: str,
        left_label: Optional[str] = None,
        right_label: Optional[str] = None,
    ) -> Tuple[str, str]:
        """``fork(label)``: two elements, both inheriting the full history."""
        history = self.history_of(label)
        left = left_label if left_label is not None else self._fresh_label(label + "0")
        del self._histories[label]
        right = (
            right_label if right_label is not None else self._fresh_label(label + "1")
        )
        if left == right:
            raise FrontierError("fork children must have distinct labels")
        for target in (left, right):
            if target in self._histories:
                raise FrontierError(f"element {target!r} already exists")
        self._histories[left] = history
        self._histories[right] = history
        return left, right

    def join(self, first: str, second: str, new_label: Optional[str] = None) -> str:
        """``join(first, second)``: one element with the union of histories."""
        if first == second:
            raise FrontierError("cannot join an element with itself")
        first_history = self.history_of(first)
        second_history = self.history_of(second)
        target = (
            new_label
            if new_label is not None
            else self._fresh_label(f"{first}{second}")
        )
        del self._histories[first]
        del self._histories[second]
        if target in self._histories:
            raise FrontierError(f"element {target!r} already exists")
        self._histories[target] = first_history.union(second_history)
        return target

    def sync(
        self,
        first: str,
        second: str,
        left_label: Optional[str] = None,
        right_label: Optional[str] = None,
    ) -> Tuple[str, str]:
        """Synchronization as join-then-fork (Section 1.1)."""
        joined = self.join(first, second)
        return self.fork(
            joined,
            left_label if left_label is not None else first,
            right_label if right_label is not None else second,
        )

    # -- queries -----------------------------------------------------------------

    def compare(self, first: str, second: str) -> Ordering:
        """Three-way comparison of two elements by history inclusion."""
        return self.history_of(first).compare(self.history_of(second))

    def equivalent(self, first: str, second: str) -> bool:
        """Section 2 equivalence: identical histories."""
        return self.compare(first, second) is Ordering.EQUAL

    def obsolete(self, first: str, second: str) -> bool:
        """Section 2 obsolescence of ``first`` relative to ``second``."""
        return self.compare(first, second) is Ordering.BEFORE

    def inconsistent(self, first: str, second: str) -> bool:
        """Section 2 mutual inconsistency."""
        return self.compare(first, second) is Ordering.CONCURRENT

    def ordering_matrix(self) -> Dict[Tuple[str, str], Ordering]:
        """All pairwise comparisons of the current configuration.

        Each unordered pair is compared once on packed bitsets; the mirror
        entry is derived by flipping, so the matrix costs F(F-1)/2 compares.
        """
        items = list(self._histories.items())
        matrix: Dict[Tuple[str, str], Ordering] = {}
        for i, (x, x_history) in enumerate(items):
            for y, y_history in items[i + 1:]:
                ordering = x_history.compare(y_history)
                matrix[(x, y)] = ordering
                matrix[(y, x)] = ordering.flipped()
        return matrix

    def dominated_by_set(self, label: str, others: Iterable[str]) -> bool:
        """Whether ``C(label) ⊆ ∪ C[others]`` (the relation of Prop. 5.1)."""
        union = 0
        for other in others:
            union |= self.history_of(other).bits
        bits = self.history_of(label).bits
        return bits & union == bits

    def copy(self) -> "CausalConfiguration":
        """A copy sharing the same event source (histories are immutable)."""
        return CausalConfiguration(self._histories, events=self._events)
