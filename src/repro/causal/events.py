"""Globally unique update events for the causal-history reference model.

The causal-history model of Section 2 assumes a *global view*: every update
produces an event with an identity that is unique across the whole system.
The paper uses this model only as a specification against which version
stamps are proved correct; we mirror that role by making event generation an
explicit, clearly non-distributed service (:class:`EventSource`), so that the
oracle's reliance on global knowledge is visible in the code and absent from
the version-stamp implementation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["UpdateEvent", "EventSource"]


@dataclass(frozen=True, order=True)
class UpdateEvent:
    """A globally unique update event.

    Attributes
    ----------
    sequence:
        Monotonically increasing number assigned by the :class:`EventSource`.
    label:
        Optional human-readable tag (e.g. the element that was updated);
        purely informational and excluded from equality.
    """

    sequence: int
    label: str = field(default="", compare=False)

    def __str__(self) -> str:
        if self.label:
            return f"e{self.sequence}({self.label})"
        return f"e{self.sequence}"


class EventSource:
    """A generator of globally unique :class:`UpdateEvent` values.

    This is deliberately a single, centralized object: it models the global
    view the paper assumes for causal histories and that version stamps do
    away with.  One source must be shared by every causal-history
    configuration participating in the same run.
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self._issued = 0

    def fresh(self, label: str = "") -> UpdateEvent:
        """Return a brand new event, never seen before in this source."""
        self._issued += 1
        return UpdateEvent(next(self._counter), label)

    @property
    def issued(self) -> int:
        """How many events this source has handed out."""
        return self._issued

    def __iter__(self) -> Iterator[UpdateEvent]:
        while True:
            yield self.fresh()
