"""Globally unique update events, issued as dense integer indices.

The causal-history model of Section 2 assumes a *global view*: every update
produces an event with an identity that is unique across the whole system.
The paper uses this model only as a specification against which version
stamps are proved correct; we mirror that role by making event generation an
explicit, clearly non-distributed service (:class:`EventSource`), so that the
oracle's reliance on global knowledge is visible in the code and absent from
the version-stamp implementation.

``EventSource`` is an *arena*: each fresh event is identified by a dense
integer index (its sequence number), and that index doubles as a bit
position, so a causal history can be stored as a single arbitrary-precision
integer (see :mod:`repro.causal.history`).  Labels are display-only metadata
kept in a side table; :func:`materialize` rebuilds an :class:`UpdateEvent`
view from a bare index whenever something needs to be shown to a human.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = [
    "UpdateEvent",
    "EventSource",
    "label_of",
    "materialize",
    "register_label",
]

#: Display labels by event index.  Labels are excluded from event equality,
#: so a collision between two sources that reuse the same index range only
#: affects rendering, never the order the oracle reports.  The table is
#: process-global and lives for the lifetime of the process -- a deliberate
#: tradeoff: events are permanent identities in the paper's global-view
#: model, the entries are display-only strings registered once per labelled
#: event, and the footprint is strictly smaller than the seed design, which
#: kept a full ``UpdateEvent`` object alive inside every frozenset history.
_LABELS: Dict[int, str] = {}


@dataclass(frozen=True, order=True)
class UpdateEvent:
    """A globally unique update event (a *view* over an arena index).

    Attributes
    ----------
    sequence:
        Monotonically increasing number assigned by the :class:`EventSource`;
        it is also the event's bit position in packed histories.
    label:
        Optional human-readable tag (e.g. the element that was updated);
        purely informational and excluded from equality.
    """

    sequence: int
    label: str = field(default="", compare=False)

    def __str__(self) -> str:
        if self.label:
            return f"e{self.sequence}({self.label})"
        return f"e{self.sequence}"


def register_label(sequence: int, label: str) -> None:
    """Record the display label of event ``sequence`` (empty labels ignored)."""
    if label:
        _LABELS[sequence] = label


def label_of(sequence: int) -> str:
    """The display label registered for event ``sequence`` (``""`` if none)."""
    return _LABELS.get(sequence, "")


def materialize(sequence: int) -> UpdateEvent:
    """Rebuild the :class:`UpdateEvent` view of a bare arena index."""
    return UpdateEvent(sequence, _LABELS.get(sequence, ""))


class EventSource:
    """An arena of globally unique update events.

    This is deliberately a single, centralized object: it models the global
    view the paper assumes for causal histories and that version stamps do
    away with.  One source must be shared by every causal-history
    configuration participating in the same run.

    The hot-path API is :meth:`fresh_index`, which hands out the next dense
    integer index without allocating an event object; :meth:`fresh` wraps it
    in an :class:`UpdateEvent` view for callers that want one.
    """

    __slots__ = ("_next", "_issued")

    def __init__(self, start: int = 0) -> None:
        self._next = start
        self._issued = 0

    def fresh_index(self, label: str = "") -> int:
        """Hand out the next dense event index (no object allocation)."""
        index = self._next
        self._next += 1
        self._issued += 1
        if label:
            _LABELS[index] = label
        return index

    def fresh(self, label: str = "") -> UpdateEvent:
        """Return a brand new event, never seen before in this source."""
        return UpdateEvent(self.fresh_index(label), label)

    @property
    def issued(self) -> int:
        """How many events this source has handed out."""
        return self._issued

    @property
    def next_index(self) -> int:
        """The index the next :meth:`fresh` call will hand out.

        Every identity this source has ever issued is strictly below it, so
        codecs can use it to recognize identities that were never minted
        here (the causal-history wire format only travels within one
        arena).
        """
        return self._next

    def __iter__(self) -> Iterator[UpdateEvent]:
        while True:
            yield self.fresh()
