"""Provenance reconstruction: which sync path lost the knowledge.

A contract violation says a replica *should* have observed some recorded
state and did not.  With decentralized causality tracking, that knowledge
can only travel along anti-entropy exchanges -- so the violation has a
reconstructible story: replay the recorded
:class:`~repro.replication.history.ExchangeRecord` entries after the
source recording and track the set of replicas holding the required
knowledge.

The replay is sound because of two properties of the sync engine:

* an exchange listed in ``keys_synced`` is *per-key transactional* --
  after it, both ends hold the combined causal knowledge for that key
  (merged, replicated, or proven EQUAL), so a completed exchange with a
  knowledge holder makes the other end a holder;
* a key in ``keys_lost`` left **both** sides exactly as they were
  (request-leg skip, response-leg rollback, or frame rejection), so a
  lost exchange never moves knowledge -- it is precisely a *lost
  propagation opportunity* whenever one end was a holder and the other
  was not, and the record carries the fault counters (drops, retries,
  corruptions) that explain the loss.

The emitted :class:`ProvenanceTrace` therefore names the last replica to
gain the required knowledge, every leg where propagation toward the
violating replica was lost (with its fault counters), and whether the
ring buffer rotated out part of the window (``truncated`` -- the trace
then reports what it can still prove instead of guessing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..replication.history import SyncHistory

__all__ = ["LostLeg", "ProvenanceTrace", "reconstruct"]


@dataclass(frozen=True)
class LostLeg:
    """One exchange that should have spread the knowledge and failed.

    ``holder``/``other`` orient the leg: ``holder`` had the required
    knowledge when the exchange ran, ``other`` did not.  The fault
    counters are the exchange's own meter deltas -- the drops, retries
    and corruptions that explain why the key never completed.
    """

    seq: int
    round_number: Optional[int]
    holder: str
    other: str
    key: str
    reason: str
    dropped: int
    retried: int
    corrupted: int
    deliveries_failed: int

    def describe(self) -> str:
        where = f"round {self.round_number}" if self.round_number else "unmarked"
        return (
            f"seq {self.seq} ({where}) {self.holder} <-> {self.other}: "
            f"{self.reason} (dropped={self.dropped}, retried={self.retried}, "
            f"corrupted={self.corrupted}, gave_up={self.deliveries_failed})"
        )


@dataclass(frozen=True)
class ProvenanceTrace:
    """The reconstructed propagation story behind one missing observation."""

    key: str
    source_replica: str
    target_replica: str
    #: The history window replayed: exchanges with since_seq <= seq < until_seq.
    since_seq: int
    until_seq: int
    #: Replicas holding the required knowledge at the end of the window.
    holders: Tuple[str, ...]
    #: The most recent replica to *gain* the knowledge (the source when it
    #: never spread at all).
    last_holder: str
    #: Sequence number of the exchange that last spread the knowledge
    #: (None when it never spread).
    last_spread_seq: Optional[int]
    #: Exchanges between a holder and a non-holder that attempted the key
    #: and lost it -- each one a propagation opportunity faults destroyed.
    lost_legs: Tuple[LostLeg, ...]
    #: Exchanges in the window that attempted the key at all.
    attempts: int
    #: Whether the ring buffer evicted part of the window (the trace is
    #: then a provable suffix of the story, not the whole story).
    truncated: bool

    @property
    def target_was_reachable(self) -> bool:
        """Whether any holder ever attempted an exchange with the target."""
        return any(
            self.target_replica in (leg.holder, leg.other) for leg in self.lost_legs
        )

    def describe(self) -> str:
        lines: List[str] = []
        lines.append(
            f"knowledge of key {self.key!r} recorded at replica "
            f"{self.source_replica!r} (history seq {self.since_seq})"
        )
        if self.truncated:
            lines.append(
                "  [ring buffer rotated out part of this window; the trace "
                "is the provable suffix]"
            )
        lines.append(
            f"  replicas holding it by seq {self.until_seq}: "
            f"{', '.join(self.holders)} "
            f"(last gained by {self.last_holder!r}"
            + (
                f" at seq {self.last_spread_seq})"
                if self.last_spread_seq is not None
                else "; it never spread)"
            )
        )
        if self.lost_legs:
            lines.append(
                f"  sync paths that should have carried it and didn't "
                f"({len(self.lost_legs)} of {self.attempts} attempts):"
            )
            for leg in self.lost_legs:
                lines.append(f"    - {leg.describe()}")
        elif self.attempts:
            lines.append(
                f"  {self.attempts} exchange(s) attempted the key, none "
                f"between a knowledge holder and replica "
                f"{self.target_replica!r}"
            )
        else:
            lines.append(
                f"  no exchange attempted key {self.key!r} in the window -- "
                f"replica {self.target_replica!r} was never offered the "
                f"knowledge (partitioned, crashed, or simply not scheduled)"
            )
        return "\n".join(lines)


def reconstruct(
    history: SyncHistory,
    *,
    key: str,
    source_replica: str,
    target_replica: str,
    since_seq: int,
    until_seq: Optional[int] = None,
) -> ProvenanceTrace:
    """Replay recorded exchanges and explain a missing observation.

    ``since_seq`` is the history sequence number snapshotted when the
    source operation was recorded (``SyncHistory.next_seq`` at record
    time); ``until_seq`` bounds the window at check time (defaults to the
    present).  Knowledge spreads through ``keys_synced`` exchanges
    touching a current holder; a ``keys_lost`` exchange between a holder
    and a non-holder is reported as a :class:`LostLeg` with its fault
    counters.
    """
    if until_seq is None:
        until_seq = history.next_seq
    oldest = history.oldest_seq
    truncated = oldest is None or oldest > since_seq
    holders = {source_replica}
    last_holder = source_replica
    last_spread_seq: Optional[int] = None
    lost_legs: List[LostLeg] = []
    attempts = 0
    for record in history.since(since_seq, until=until_seq):
        if not record.involves(key):
            continue
        attempts += 1
        first_holds = record.first in holders
        second_holds = record.second in holders
        if not first_holds and not second_holds:
            # Neither end had the knowledge: whatever this exchange did
            # to the key, it moved older state and cannot advance (or
            # lose) the knowledge we are tracing.
            continue
        if record.carried(key):
            if not (first_holds and second_holds):
                gained = record.second if first_holds else record.first
                holders.add(gained)
                last_holder = gained
                last_spread_seq = record.seq
            continue
        if first_holds and second_holds:
            continue
        holder, other = (
            (record.first, record.second)
            if first_holds
            else (record.second, record.first)
        )
        lost_legs.append(
            LostLeg(
                seq=record.seq,
                round_number=record.round_number,
                holder=holder,
                other=other,
                key=key,
                reason=record.lost_reason(key) or "lost",
                dropped=record.dropped,
                retried=record.retried,
                corrupted=record.corrupted,
                deliveries_failed=record.deliveries_failed,
            )
        )
    return ProvenanceTrace(
        key=key,
        source_replica=source_replica,
        target_replica=target_replica,
        since_seq=since_seq,
        until_seq=until_seq,
        holders=tuple(sorted(holders)),
        last_holder=last_holder,
        last_spread_seq=last_spread_seq,
        lost_legs=tuple(lost_legs),
        attempts=attempts,
        truncated=truncated,
    )
