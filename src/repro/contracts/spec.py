"""Declarative ordering contracts between named operations.

A :class:`ContractSpec` states a causal obligation between two *named
operations* over one store key -- "pipeline B's ``train`` must observe
pipeline A's latest ``export`` of ``dataset``" -- without saying anything
about which clock family tracks the key.  The checker evaluates the
obligation purely through :class:`~repro.replication.tracker.
CausalityTracker` comparisons, so one spec enforces identically over
version stamps, ITC, dynamic version vectors or raw causal histories.

Four contract kinds cover the stale-data failure modes SNIPPETS.md
Snippet 3 (contextcore's Layer-4 design) catalogues:

* ``observes`` -- the target operation must have observed the source
  operation's *latest* recorded state of the key (the stale-export
  pipeline contract).
* ``happened-before`` -- the source operation must have happened, and the
  target must causally follow *some* recorded completion of it (the
  weaker "A ran before B" ordering; unlike ``observes`` it is violated
  when the source never ran at all).
* ``mutual-exclusion`` -- the target operation must not run causally
  concurrent with the source operation's latest recorded state (two
  supposedly serialized actors racing).
* ``freshness-within-k-events`` -- the target may lag the source's
  recorded states by at most ``max_lag`` recordings (bounded staleness:
  "B may be at most k exports behind A").

All validation failures raise the typed
:class:`~repro.core.errors.ContractError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from ..core.errors import ContractError

__all__ = ["ContractKind", "ContractSpec"]


class ContractKind(enum.Enum):
    """The causal obligation a contract enforces."""

    OBSERVES = "observes"
    HAPPENED_BEFORE = "happened-before"
    MUTUAL_EXCLUSION = "mutual-exclusion"
    FRESHNESS = "freshness-within-k-events"

    @classmethod
    def parse(cls, value: Union["ContractKind", str]) -> "ContractKind":
        """Coerce a kind name (the enum value string) to the enum."""
        if isinstance(value, cls):
            return value
        for kind in cls:
            if kind.value == value:
                return kind
        known = ", ".join(kind.value for kind in cls)
        raise ContractError(
            f"unknown contract kind {value!r}; known kinds: {known}"
        )


@dataclass(frozen=True)
class ContractSpec:
    """One declarative ordering contract.

    Parameters
    ----------
    name:
        Unique label of the contract (appears in violation reports).
    kind:
        A :class:`ContractKind` or its string value.
    source:
        The operation whose recorded state the obligation refers to
        (e.g. the producer's ``export``).
    target:
        The operation checked at its boundary (e.g. the consumer's
        ``train``).
    key:
        The store key both operations act on.
    max_lag:
        Only for ``freshness-within-k-events``: the number of source
        recordings the target may lag behind (``>= 1``).
    """

    name: str
    kind: ContractKind
    source: str
    target: str
    key: str
    max_lag: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", ContractKind.parse(self.kind))
        for field_name in ("name", "source", "target", "key"):
            value = getattr(self, field_name)
            if not isinstance(value, str) or not value:
                raise ContractError(
                    f"contract {field_name} must be a non-empty string, "
                    f"got {value!r}"
                )
        if self.source == self.target:
            raise ContractError(
                f"contract {self.name!r} relates operation "
                f"{self.source!r} to itself; source and target must be "
                f"distinct operations"
            )
        if self.kind is ContractKind.FRESHNESS:
            if not isinstance(self.max_lag, int) or isinstance(self.max_lag, bool):
                raise ContractError(
                    f"contract {self.name!r} ({self.kind.value}) needs an "
                    f"integer max_lag, got {self.max_lag!r}"
                )
            if self.max_lag < 1:
                raise ContractError(
                    f"contract {self.name!r} needs max_lag >= 1, got "
                    f"{self.max_lag} (a freshness bound of zero is the "
                    f"'observes' contract)"
                )
        elif self.max_lag is not None:
            raise ContractError(
                f"contract {self.name!r} ({self.kind.value}) does not take "
                f"a max_lag bound (only freshness-within-k-events does)"
            )

    def describe(self) -> str:
        """One readable line stating the obligation."""
        if self.kind is ContractKind.OBSERVES:
            clause = f"must observe {self.source!r}'s latest state"
        elif self.kind is ContractKind.HAPPENED_BEFORE:
            clause = f"must causally follow a completed {self.source!r}"
        elif self.kind is ContractKind.MUTUAL_EXCLUSION:
            clause = f"must not run concurrent with {self.source!r}"
        else:
            clause = (
                f"may lag {self.source!r} by at most {self.max_lag} "
                f"recorded event(s)"
            )
        return f"[{self.name}] operation {self.target!r} {clause} on key {self.key!r}"
