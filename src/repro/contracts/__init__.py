"""Causal ordering contracts: consumer-facing enforcement with provenance.

This package is the repo's Layer-4 answer to the question the kernel
clocks only make *answerable*: not "are these two states concurrent?"
but "did the operation I am about to run observe the state it was
promised?".  Pipelines declare obligations as
:class:`~repro.contracts.spec.ContractSpec` values, a
:class:`~repro.contracts.checker.ContractChecker` evaluates them at
operation boundaries through the family-generic
:class:`~repro.replication.tracker.CausalityTracker` interface, and --
when the sync engine records a
:class:`~repro.replication.history.SyncHistory` -- every violation
carries a :class:`~repro.contracts.provenance.ProvenanceTrace` naming
the anti-entropy legs that should have carried the knowledge and the
injected faults that destroyed them.

Try it end to end with ``repro contracts demo``.
"""

from __future__ import annotations

from .checker import (
    ContractChecker,
    ContractViolation,
    OperationRecord,
    ViolationReport,
)
from .provenance import LostLeg, ProvenanceTrace, reconstruct
from .spec import ContractKind, ContractSpec

__all__ = [
    "ContractKind",
    "ContractSpec",
    "ContractChecker",
    "ContractViolation",
    "OperationRecord",
    "ViolationReport",
    "LostLeg",
    "ProvenanceTrace",
    "reconstruct",
]
