"""Contract evaluation at operation boundaries.

:class:`ContractChecker` holds a set of :class:`~repro.contracts.spec.
ContractSpec` declarations and two kinds of state:

* *recordings* -- snapshots of the source operations' causal trackers,
  taken when the producer runs (:meth:`ContractChecker.record`, or
  automatically via :meth:`watch_writes` through the store's put
  listener);
* *bindings* -- which store replica a target operation runs against,
  for the inline :meth:`scan` hook the gossip drivers call.

Checking is family-generic by construction: the only questions ever
asked of causal metadata are :meth:`~repro.replication.tracker.
CausalityTracker.dominates` / :meth:`~repro.replication.tracker.
CausalityTracker.stale_or_concurrent` and one
:meth:`~repro.replication.tracker.CausalityTracker.compare` for mutual
exclusion, so any registered kernel family (and the in-memory baselines)
enforces identically.

Epoch soundness
---------------
Kernel trackers carry a re-rooting epoch, and clocks from different
epochs cannot be compared directly.  The checker resolves cross-epoch
checks *without* comparing, using the compaction protocol's invariant
(epoch bumps only happen at common knowledge -- see
:meth:`~repro.replication.synchronizer.AntiEntropy.compact_key`):

* target epoch **newer** than the recorded snapshot's: satisfied.  The
  bump the target went through required every live holder -- including
  the recording replica, whose knowledge contained the recorded state --
  to reach pairwise-EQUAL first, so any post-bump state causally
  dominates any pre-bump snapshot of the same key.
* target epoch **older**: violation (``"straggler"`` mode).  The
  recording was taken at the newer epoch, i.e. after a bump the target
  has still not heard about; the target's last successful sync on the
  key predates that bump and therefore predates the recording.

On violation the checker raises (or collects) a typed
:class:`ContractViolation` carrying a machine-readable
:class:`ViolationReport`; when the engine records a
:class:`~repro.replication.history.SyncHistory`, the report embeds the
:class:`~repro.contracts.provenance.ProvenanceTrace` naming the sync
paths that should have carried the knowledge and didn't.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..core.errors import ContractError, ReplicationError
from ..core.order import Ordering
from ..replication.history import SyncHistory
from ..replication.store import StoreReplica
from ..replication.tracker import CausalityTracker
from .provenance import ProvenanceTrace, reconstruct
from .spec import ContractKind, ContractSpec

__all__ = [
    "OperationRecord",
    "ViolationReport",
    "ContractViolation",
    "ContractChecker",
]


@dataclass(frozen=True)
class OperationRecord:
    """One recorded completion of a source operation on one key."""

    operation: str
    key: str
    replica: str
    tracker: CausalityTracker
    epoch: Optional[int]
    #: ``SyncHistory.next_seq`` at record time (None without a history) --
    #: the anchor provenance reconstruction replays from.
    seq: Optional[int]
    #: 1-based count of recordings of this (operation, key) so far.
    index: int


@dataclass(frozen=True)
class ViolationReport:
    """Machine-readable description of one contract violation."""

    spec: ContractSpec
    #: ``"stale"`` (target saw only a causal prefix), ``"concurrent"``
    #: (target raced the source), ``"missing"`` (target never received
    #: the key, or a happened-before source never ran), or
    #: ``"straggler"`` (target is a re-rooting epoch behind the source).
    mode: str
    target_replica: str
    source_replica: Optional[str]
    #: The observed tracker ordering (None when no compare was possible:
    #: missing key, missing source, or cross-epoch resolution).
    ordering: Optional[str]
    #: For freshness contracts: how many recordings behind the target is
    #: (None when it lags past everything the checker retained).
    lag: Optional[int] = None
    #: 1-based index of the source recording the check compared against.
    record_index: Optional[int] = None
    provenance: Optional[ProvenanceTrace] = None

    @property
    def contract(self) -> str:
        return self.spec.name

    @property
    def kind(self) -> str:
        return self.spec.kind.value

    @property
    def key(self) -> str:
        return self.spec.key

    def summary(self) -> str:
        """One line: which contract broke, where, and how."""
        source = (
            f" (source at {self.source_replica!r})"
            if self.source_replica is not None
            else ""
        )
        return (
            f"contract {self.spec.name!r} violated: {self.spec.target!r} at "
            f"replica {self.target_replica!r} is {self.mode} on key "
            f"{self.spec.key!r}{source}"
        )

    def describe(self) -> str:
        """The readable multi-line report (summary, obligation, provenance)."""
        lines = [self.summary(), f"  obligation: {self.spec.describe()}"]
        if self.ordering is not None:
            lines.append(f"  observed ordering: {self.ordering}")
        if self.lag is not None:
            lines.append(
                f"  lag: {self.lag} recording(s) behind "
                f"(allowed: {self.spec.max_lag})"
            )
        elif self.spec.kind is ContractKind.FRESHNESS:
            lines.append(
                f"  lag: beyond every retained recording "
                f"(allowed: {self.spec.max_lag})"
            )
        if self.provenance is not None:
            lines.append("  provenance:")
            for line in self.provenance.describe().splitlines():
                lines.append(f"    {line}")
        return "\n".join(lines)


class ContractViolation(ContractError):
    """A checked contract did not hold.

    Carries the :class:`ViolationReport` as :attr:`report`; the exception
    message is the report's one-line summary, so logs stay readable while
    handlers get the full machine-readable structure (and the provenance
    trace, when sync history is recorded).
    """

    def __init__(self, report: ViolationReport) -> None:
        super().__init__(report.summary())
        self.report = report


class _OpLog:
    """Retained recordings of one (source operation, key) pair."""

    __slots__ = ("first", "recent", "count")

    def __init__(self, depth: int) -> None:
        self.first: Optional[OperationRecord] = None
        self.recent: Deque[OperationRecord] = deque(maxlen=depth)
        self.count = 0

    def add(self, record: OperationRecord) -> None:
        if self.first is None:
            self.first = record
        self.recent.append(record)
        self.count += 1

    @property
    def latest(self) -> Optional[OperationRecord]:
        return self.recent[-1] if self.recent else None


class ContractChecker:
    """Evaluate declared ordering contracts against live store replicas.

    Parameters
    ----------
    specs:
        The :class:`~repro.contracts.spec.ContractSpec` declarations to
        enforce; names must be unique.
    history:
        Optional :class:`~repro.replication.history.SyncHistory` (the
        engine's ``history=`` recorder).  With it, recordings are
        anchored to history sequence numbers and every violation report
        embeds a provenance trace.
    """

    def __init__(
        self,
        specs: Iterable[ContractSpec],
        *,
        history: Optional[SyncHistory] = None,
    ) -> None:
        self.specs: Tuple[ContractSpec, ...] = tuple(specs)
        if not self.specs:
            raise ContractError("a contract checker needs at least one spec")
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ContractError(
                f"duplicate contract name(s): {', '.join(duplicates)}"
            )
        self.history = history
        self._by_source: Dict[str, List[ContractSpec]] = {}
        self._by_target: Dict[str, List[ContractSpec]] = {}
        for spec in self.specs:
            self._by_source.setdefault(spec.source, []).append(spec)
            self._by_target.setdefault(spec.target, []).append(spec)
        # Retention per (source op, key): freshness contracts need the
        # last max_lag + 1 recordings, everything else only the latest
        # (plus the pinned first, kept separately for happened-before).
        self._logs: Dict[Tuple[str, str], _OpLog] = {}
        self._depths: Dict[Tuple[str, str], int] = {}
        for spec in self.specs:
            pair = (spec.source, spec.key)
            depth = (spec.max_lag + 1) if spec.max_lag is not None else 1
            self._depths[pair] = max(self._depths.get(pair, 1), depth)
        self._bindings: Dict[str, StoreReplica] = {}
        #: Violations collected by :meth:`scan` (the inline gossip hook).
        self.violations: List[ViolationReport] = []

    # -- producer side -----------------------------------------------------

    def record(self, operation: str, store: StoreReplica) -> List[OperationRecord]:
        """Snapshot ``store``'s trackers as a completion of ``operation``.

        One :class:`OperationRecord` is taken per contract naming
        ``operation`` as its source (each on its own key).  Raises
        :class:`~repro.core.errors.ContractError` when no contract
        mentions the operation or the store does not hold a required key.
        """
        specs = self._by_source.get(operation)
        if not specs:
            known = ", ".join(sorted(self._by_source))
            raise ContractError(
                f"no contract names operation {operation!r} as its source "
                f"(known source operations: {known})"
            )
        records = []
        for key in sorted({spec.key for spec in specs}):
            records.append(self._record_key(operation, store, key))
        return records

    def _record_key(
        self, operation: str, store: StoreReplica, key: str
    ) -> OperationRecord:
        # A recording is a *live observer fork*, not a tracker copy: the
        # version-stamp family only orders coexisting stamps, so a copy
        # would go stale the moment a later sync joins (and frontier-
        # normalizes) the store-side tracker.  See StoreReplica.observe.
        try:
            tracker = store.observe(key)
        except ReplicationError as error:
            raise ContractError(
                f"cannot record operation {operation!r}: {error}"
            ) from error
        pair = (operation, key)
        log = self._logs.get(pair)
        if log is None:
            log = self._logs[pair] = _OpLog(self._depths.get(pair, 1))
        record = OperationRecord(
            operation=operation,
            key=key,
            replica=store.name,
            tracker=tracker,
            epoch=getattr(tracker, "epoch", None),
            seq=self.history.next_seq if self.history is not None else None,
            index=log.count + 1,
        )
        log.add(record)
        return record

    def watch_writes(self, store: StoreReplica, operation: str) -> None:
        """Auto-record ``operation`` whenever ``store`` puts a contract key.

        Registers a put listener on the store: every local write to a key
        that some contract binds to ``operation`` as its source is
        recorded at the moment it lands -- the producer-side integration
        hook, so pipelines do not have to call :meth:`record` by hand.
        """
        specs = self._by_source.get(operation)
        if not specs:
            raise ContractError(
                f"no contract names operation {operation!r} as its source"
            )
        watched = {spec.key for spec in specs}

        def on_put(replica: StoreReplica, key: str) -> None:
            if key in watched:
                self._record_key(operation, replica, key)

        store.add_put_listener(on_put)

    # -- consumer side -----------------------------------------------------

    def bind(self, operation: str, store: StoreReplica) -> None:
        """Declare that ``operation`` runs against ``store`` (for scans)."""
        if operation not in self._by_target:
            known = ", ".join(sorted(self._by_target))
            raise ContractError(
                f"no contract names operation {operation!r} as its target "
                f"(known target operations: {known})"
            )
        self._bindings[operation] = store

    def check(
        self,
        operation: str,
        store: Optional[StoreReplica] = None,
        *,
        raise_on_violation: bool = True,
    ) -> List[ViolationReport]:
        """Evaluate every contract targeting ``operation`` at its boundary.

        ``store`` defaults to the replica bound via :meth:`bind`.  With
        ``raise_on_violation`` (the default) the first violation raises a
        :class:`ContractViolation`; otherwise all violations are returned
        (an empty list means the operation may proceed).
        """
        specs = self._by_target.get(operation)
        if not specs:
            known = ", ".join(sorted(self._by_target))
            raise ContractError(
                f"no contract names operation {operation!r} as its target "
                f"(known target operations: {known})"
            )
        if store is None:
            store = self._bindings.get(operation)
            if store is None:
                raise ContractError(
                    f"operation {operation!r} is not bound to a store; pass "
                    f"one or call bind() first"
                )
        reports = []
        for spec in specs:
            report = self._evaluate(spec, store)
            if report is not None:
                if raise_on_violation:
                    raise ContractViolation(report)
                reports.append(report)
        return reports

    def scan(self) -> List[ViolationReport]:
        """Evaluate all bound target operations, collecting violations.

        The inline hook gossip drivers call after each round / session:
        never raises, appends fresh violations to :attr:`violations`, and
        returns this scan's findings.
        """
        fresh: List[ViolationReport] = []
        for operation in sorted(self._bindings):
            fresh.extend(
                self.check(operation, raise_on_violation=False)
            )
        self.violations.extend(fresh)
        return fresh

    # -- evaluation --------------------------------------------------------

    def _evaluate(
        self, spec: ContractSpec, store: StoreReplica
    ) -> Optional[ViolationReport]:
        log = self._logs.get((spec.source, spec.key))
        if spec.kind is ContractKind.MUTUAL_EXCLUSION:
            return self._check_exclusion(spec, store, log)
        if spec.kind is ContractKind.HAPPENED_BEFORE:
            if log is None or log.first is None:
                return self._report(
                    spec, store, mode="missing", record=None, ordering=None
                )
            return self._check_dominance(spec, store, log.first)
        if log is None or log.latest is None:
            # No recorded source state yet: observes/freshness are
            # vacuously satisfied (there is nothing to observe).
            return None
        if spec.kind is ContractKind.OBSERVES:
            return self._check_dominance(spec, store, log.latest)
        return self._check_freshness(spec, store, log)

    def _target_tracker(
        self, spec: ContractSpec, store: StoreReplica
    ) -> Optional[CausalityTracker]:
        state = store._keys.get(spec.key)
        return state.tracker if state is not None else None

    def _relation(
        self, target: CausalityTracker, record: OperationRecord
    ) -> Optional[str]:
        """How ``target`` fails to dominate the record, epoch-resolved."""
        target_epoch = getattr(target, "epoch", None)
        if (
            target_epoch is not None
            and record.epoch is not None
            and target_epoch != record.epoch
        ):
            # Cross-epoch: resolved by the compaction invariant (see the
            # module docstring), never by a direct compare.
            return None if target_epoch > record.epoch else "straggler"
        return target.stale_or_concurrent(record.tracker)

    def _check_dominance(
        self, spec: ContractSpec, store: StoreReplica, record: OperationRecord
    ) -> Optional[ViolationReport]:
        target = self._target_tracker(spec, store)
        if target is None:
            return self._report(
                spec, store, mode="missing", record=record, ordering=None
            )
        failure = self._relation(target, record)
        if failure is None:
            return None
        ordering = (
            target.compare(record.tracker).value
            if failure in ("stale", "concurrent")
            else None
        )
        return self._report(
            spec, store, mode=failure, record=record, ordering=ordering
        )

    def _check_freshness(
        self, spec: ContractSpec, store: StoreReplica, log: _OpLog
    ) -> Optional[ViolationReport]:
        assert spec.max_lag is not None
        if log.count <= spec.max_lag:
            # Fewer recordings than the allowed lag exist at all, so the
            # target cannot be more than max_lag behind.
            return None
        bound = log.recent[-(spec.max_lag + 1)]
        target = self._target_tracker(spec, store)
        if target is None:
            return self._report(
                spec, store, mode="missing", record=bound, ordering=None
            )
        failure = self._relation(target, bound)
        if failure is None:
            return None
        # Actual lag, for the report: distance from the newest recording
        # to the first one the target dominates (None: beyond retention).
        lag: Optional[int] = None
        for offset, record in enumerate(reversed(log.recent)):
            if self._relation(target, record) is None:
                lag = offset
                break
        ordering = (
            target.compare(bound.tracker).value
            if failure in ("stale", "concurrent")
            else None
        )
        return self._report(
            spec, store, mode=failure, record=bound, ordering=ordering, lag=lag
        )

    def _check_exclusion(
        self,
        spec: ContractSpec,
        store: StoreReplica,
        log: Optional[_OpLog],
    ) -> Optional[ViolationReport]:
        record = log.latest if log is not None else None
        if record is None:
            return None
        target = self._target_tracker(spec, store)
        if target is None:
            return None
        target_epoch = getattr(target, "epoch", None)
        if (
            target_epoch is not None
            and record.epoch is not None
            and target_epoch != record.epoch
        ):
            # Cross-epoch states are ordered by the compaction invariant
            # (the newer epoch dominates), hence never concurrent.
            return None
        ordering = target.compare(record.tracker)
        if ordering is not Ordering.CONCURRENT:
            return None
        return self._report(
            spec,
            store,
            mode="concurrent",
            record=record,
            ordering=ordering.value,
        )

    def _report(
        self,
        spec: ContractSpec,
        store: StoreReplica,
        *,
        mode: str,
        record: Optional[OperationRecord],
        ordering: Optional[str],
        lag: Optional[int] = None,
    ) -> ViolationReport:
        provenance = None
        if (
            self.history is not None
            and record is not None
            and record.seq is not None
        ):
            provenance = reconstruct(
                self.history,
                key=spec.key,
                source_replica=record.replica,
                target_replica=store.name,
                since_seq=record.seq,
            )
        return ViolationReport(
            spec=spec,
            mode=mode,
            target_replica=store.name,
            source_replica=record.replica if record is not None else None,
            ordering=ordering,
            lag=lag,
            record_index=record.index if record is not None else None,
            provenance=provenance,
        )
