"""The public causality kernel: one protocol, many clock families.

This package is the single public API surface over every causality
mechanism the repo reproduces:

* :mod:`~repro.kernel.protocol` -- the :class:`CausalityClock` protocol
  (``fork`` / ``event`` / ``join`` / ``compare`` / ``encoded_size_bits`` /
  ``to_bytes``-``from_bytes``) and the :class:`PartialOrder` it returns;
* :mod:`~repro.kernel.clocks`   -- the concrete families: version stamps,
  interval tree clocks, dynamic version vectors and the causal-history
  oracle, each carrying a re-rooting **epoch tag**;
* :mod:`~repro.kernel.registry` -- :func:`make` and the family registry;
* :mod:`~repro.kernel.envelope` -- the versioned, self-describing,
  epoch-tagged wire envelope shared by every family;
* :mod:`~repro.kernel.stream`   -- the batched envelope stream (one header
  + N length-prefixed frames, single shared epoch, lazy zero-copy decode
  with an interning table) that anti-entropy batches ride on;
* :mod:`~repro.kernel.adapters` -- the lockstep mechanism adapters,
  including the generic :class:`KernelClockAdapter` that drives any
  registered family through the protocol alone.

Quick start
-----------
>>> from repro import kernel
>>> clock = kernel.make("itc")
>>> left, right = clock.fork()
>>> left = left.event()
>>> left.compare(right).name
'AFTER'
>>> restored = kernel.from_bytes(left.to_bytes())
>>> restored == left
True
"""

from ..core.errors import (
    EncodingError,
    EnvelopeError,
    EnvelopeMagicError,
    EnvelopeTruncatedError,
    EnvelopeVersionError,
    EpochMismatch,
    UnknownClockFamily,
)
from .adapters import (
    KernelClockAdapter,
    MechanismAdapter,
    default_adapters,
    kernel_adapters,
)
from .clocks import (
    CausalHistoryClock,
    DynamicVVClock,
    ITCClock,
    KernelClock,
    VersionStampClock,
)
from .envelope import (
    FORMAT_VERSION,
    MAGIC,
    EnvelopeInfo,
    decode_envelope,
    encode_envelope,
    envelope_info,
)
from .protocol import CausalityClock, PartialOrder
from .registry import ClockFamily, families, family, family_by_tag, make, register
from .stream import (
    STREAM_FORMAT_VERSION,
    STREAM_HEADER_SIZE,
    STREAM_MAGIC,
    ClockStream,
    IncrementalStreamDecoder,
    InternTable,
    StreamInfo,
    decode_stream,
    encode_stream,
    stream_info,
)

#: The envelope decoder, exposed under the protocol's name.
from_bytes = decode_envelope
#: The envelope encoder, for symmetry (clocks also expose ``.to_bytes()``).
to_bytes = encode_envelope

__all__ = [
    "CausalityClock",
    "PartialOrder",
    "KernelClock",
    "VersionStampClock",
    "ITCClock",
    "DynamicVVClock",
    "CausalHistoryClock",
    "ClockFamily",
    "register",
    "make",
    "families",
    "family",
    "family_by_tag",
    "MAGIC",
    "FORMAT_VERSION",
    "EnvelopeInfo",
    "encode_envelope",
    "decode_envelope",
    "envelope_info",
    "from_bytes",
    "to_bytes",
    "STREAM_MAGIC",
    "STREAM_FORMAT_VERSION",
    "STREAM_HEADER_SIZE",
    "StreamInfo",
    "InternTable",
    "ClockStream",
    "encode_stream",
    "decode_stream",
    "stream_info",
    "IncrementalStreamDecoder",
    "MechanismAdapter",
    "KernelClockAdapter",
    "default_adapters",
    "kernel_adapters",
    "EncodingError",
    "EnvelopeError",
    "EnvelopeMagicError",
    "EnvelopeTruncatedError",
    "EnvelopeVersionError",
    "UnknownClockFamily",
    "EpochMismatch",
]
