"""The batched envelope stream: one header, N length-prefixed frames.

Anti-entropy traffic is dominated by causal metadata: every sync message
carries a stamp, and a replica pair reconciling a whole store ships one
stamp per key.  Framing each stamp as its own envelope
(:mod:`repro.kernel.envelope`) repeats the magic/version/family/epoch
header per stamp and forces the receiver to re-validate it N times.  The
stream format amortizes all of that across a batch::

    offset  size  field
    ------  ----  ----------------------------------------------------------
         0     2  magic  b"CS"
         2     1  stream format version (currently 1)
         3     1  clock-family wire tag (shared by every frame)
         4     4  re-rooting epoch, big-endian unsigned (shared, single)
         8     4  frame count N, big-endian unsigned
        12     .  N frames, each: payload length u32 + family payload

Batch rules (enforced at encode time, typed errors):

* every clock in a batch belongs to **one family** -- the tag is hoisted
  into the header, so a frame is a bare family payload;
* every clock carries **one shared epoch** -- mixed-epoch batches are
  rejected just like mixed-epoch ``compare``/``join`` (a straggler must be
  upgraded, not smuggled inside a batch);
* an empty batch is legal but must name its family and epoch explicitly.

Decoding is **lazy and zero-copy**: :func:`decode_stream` validates the
frame table once and returns a :class:`ClockStream` whose frames are
``memoryview`` subviews of the caller's buffer, decoded into clocks only
on access and cached per index.  An optional :class:`InternTable` makes
repeated payloads pointer-equal -- within one batch *and across batches
that share the table*, which is what lets a replication engine skip
re-decoding the (typically unchanged) metadata a peer re-ships every
anti-entropy round.

:func:`stream_info` is the streaming peek: it reads family, epoch and
frame count from the 12-byte header alone, so a router can classify a
batch (or detect an epoch straggler) from the first bytes of a transfer
without the body even being available yet.

Rejections are the envelope's typed :class:`~repro.core.errors.EncodingError`
subclasses: :class:`EnvelopeMagicError`, :class:`EnvelopeVersionError`,
:class:`UnknownClockFamily`, :class:`EnvelopeTruncatedError`, and plain
:class:`EnvelopeError` for trailing bytes and batch-rule violations.

Corruption isolation: every rejection a damaged stream can provoke is one
of those typed errors -- structural damage (header, frame table, trailing
bytes) eagerly at :func:`decode_stream`, payload damage lazily at frame
access -- never a raw ``struct``/``IndexError``, so a fault-tolerant
consumer can retry or skip per frame.  The :class:`InternTable` only
admits *successfully decoded* clocks, so a bad frame can never poison
entries other consumers share.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, NamedTuple, Optional

from ..core.errors import (
    EncodingError,
    EnvelopeError,
    EnvelopeMagicError,
    EnvelopeTruncatedError,
    EnvelopeVersionError,
    ReproError,
)
from .clocks import KernelClock
from .registry import family, family_by_tag

__all__ = [
    "STREAM_MAGIC",
    "STREAM_FORMAT_VERSION",
    "STREAM_HEADER_SIZE",
    "StreamInfo",
    "InternTable",
    "ClockStream",
    "IncrementalStreamDecoder",
    "encode_stream",
    "decode_stream",
    "stream_info",
]

STREAM_MAGIC = b"CS"
STREAM_FORMAT_VERSION = 1
STREAM_HEADER_SIZE = 12

_MAX_EPOCH = (1 << 32) - 1
_MAX_FRAMES = (1 << 32) - 1


class StreamInfo(NamedTuple):
    """The stream header, decoded without touching any frame payload."""

    family: str
    format_version: int
    epoch: int
    frame_count: int


class InternTable:
    """A bounded payload -> clock table making repeated stamps pointer-equal.

    Keys are ``(family tag, epoch, payload bytes)``; values are the decoded
    clocks.  Because kernel clocks are immutable and their codecs are
    canonical (distinct byte strings never decode equal), handing the same
    object out for the same payload is sound -- and turns the common
    anti-entropy case, a peer re-shipping mostly-unchanged metadata every
    round, into dictionary hits instead of payload decodes.

    The table is bounded: when full, the oldest entry is evicted (FIFO),
    so a long-lived replication session cannot grow it without limit.
    """

    __slots__ = ("_table", "_max_entries", "hits", "misses")

    def __init__(self, *, max_entries: int = 65536) -> None:
        if max_entries <= 0:
            raise ValueError("an intern table needs room for at least one entry")
        self._table = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def get(self, key) -> Optional[KernelClock]:
        clock = self._table.get(key)
        if clock is None:
            self.misses += 1
        else:
            self.hits += 1
        return clock

    def put(self, key, clock: KernelClock) -> None:
        table = self._table
        if key not in table and len(table) >= self._max_entries:
            del table[next(iter(table))]
        table[key] = clock


def encode_stream(
    clocks: Iterable[KernelClock],
    *,
    family_name: Optional[str] = None,
    epoch: Optional[int] = None,
) -> bytes:
    """Frame a batch of same-family, same-epoch clocks as one stream.

    ``family_name`` and ``epoch`` default to the first clock's; an empty
    batch must pass both explicitly.  Mixing families or epochs in one
    batch raises :class:`EnvelopeError` (typed), mirroring the epoch rules
    of ``compare``/``join``.
    """
    batch = list(clocks)
    if batch:
        if family_name is None:
            family_name = batch[0].family
        if epoch is None:
            epoch = batch[0].epoch
    elif family_name is None or epoch is None:
        raise EnvelopeError(
            "an empty stream batch must name its clock family and epoch "
            "explicitly"
        )
    entry = family(family_name)
    if not 0 <= epoch <= _MAX_EPOCH:
        raise EnvelopeError(f"epoch {epoch} exceeds the 32-bit stream field")
    if len(batch) > _MAX_FRAMES:
        raise EnvelopeError(
            f"{len(batch)} frames exceed the 32-bit stream frame count"
        )
    parts: List[bytes] = [
        STREAM_MAGIC,
        bytes((STREAM_FORMAT_VERSION, entry.tag)),
        epoch.to_bytes(4, "big"),
        len(batch).to_bytes(4, "big"),
    ]
    for clock in batch:
        if clock.family != family_name:
            raise EnvelopeError(
                f"stream batches carry one clock family: expected "
                f"{family_name!r}, found {clock.family!r}"
            )
        if clock.epoch != epoch:
            raise EnvelopeError(
                f"stream batches share one epoch: expected {epoch}, "
                f"found {clock.epoch} (upgrade the straggler first)"
            )
        payload = clock.payload_bytes()
        parts.append(len(payload).to_bytes(4, "big"))
        parts.append(payload)
    return b"".join(parts)


def _stream_header(data) -> StreamInfo:
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise EnvelopeError(
            f"streams are byte strings, got {type(data).__name__}"
        )
    if len(data) < STREAM_HEADER_SIZE:
        raise EnvelopeTruncatedError(
            f"stream header needs {STREAM_HEADER_SIZE} bytes, got {len(data)}"
        )
    if data[:2] != STREAM_MAGIC:
        raise EnvelopeMagicError(
            f"bad stream magic {bytes(data[:2])!r} (expected {STREAM_MAGIC!r})"
        )
    version = data[2]
    if version == 0 or version > STREAM_FORMAT_VERSION:
        raise EnvelopeVersionError(
            f"stream format version {version} is not supported "
            f"(this library speaks versions 1..{STREAM_FORMAT_VERSION})"
        )
    entry = family_by_tag(data[3])
    epoch = int.from_bytes(data[4:8], "big")
    count = int.from_bytes(data[8:12], "big")
    return StreamInfo(entry.name, version, epoch, count)


def stream_info(data) -> StreamInfo:
    """The streaming peek: family, epoch and frame count from the header.

    Needs only the first :data:`STREAM_HEADER_SIZE` bytes and never looks
    at a frame, so it works on a partial buffer while the body is still in
    flight -- the batch analogue of
    :func:`~repro.kernel.envelope.envelope_info`, and like it accepts any
    byte buffer (``memoryview`` included) without copying.
    """
    return _stream_header(data)


class ClockStream:
    """A decoded stream: lazily materialized, index-cached clock frames.

    Supports ``len``, indexing and iteration.  ``stream[i]`` decodes frame
    ``i`` on first access (through the intern table when one was given)
    and caches the clock, so a consumer that only inspects a few frames
    never pays for the rest.
    """

    __slots__ = ("_info", "_frames", "_clocks", "_decoder", "_tag", "_intern")

    def __init__(self, info, frames, decoder, tag, intern) -> None:
        self._info = info
        self._frames = frames
        self._clocks: List[Optional[KernelClock]] = [None] * len(frames)
        self._decoder = decoder
        self._tag = tag
        self._intern = intern

    @property
    def info(self) -> StreamInfo:
        """The stream header fields."""
        return self._info

    @property
    def epoch(self) -> int:
        """The batch's single shared epoch."""
        return self._info.epoch

    @property
    def family(self) -> str:
        """The batch's single clock family."""
        return self._info.family

    def __len__(self) -> int:
        return len(self._frames)

    def frame_bytes(self, index: int):
        """The raw payload of frame ``index`` (a zero-copy subview)."""
        return self._frames[index]

    def __getitem__(self, index: int) -> KernelClock:
        clock = self._clocks[index]
        if clock is None:
            clock = self._decode(index)
            self._clocks[index] = clock
        return clock

    def __iter__(self) -> Iterator[KernelClock]:
        for index in range(len(self._frames)):
            yield self[index]

    def _decode(self, index: int) -> KernelClock:
        payload = self._frames[index]
        intern = self._intern
        if intern is not None:
            key = (self._tag, self._info.epoch, bytes(payload))
            clock = intern.get(key)
            if clock is not None:
                return clock
            clock = self._decode_payload(payload, index)
            intern.put(key, clock)
            return clock
        return self._decode_payload(payload, index)

    def _decode_payload(self, payload, index: int) -> KernelClock:
        try:
            clock = self._decoder(payload, self._info.epoch)
        except ReproError:
            raise
        except Exception as exc:  # noqa: BLE001 - codecs must not leak raw errors
            raise EncodingError(
                f"malformed {self._info.family!r} payload in stream frame "
                f"{index}: {exc}"
            ) from exc
        # Canonical codecs make decode-then-encode the identity, so the
        # frame bytes just decoded *are* the clock's payload encoding:
        # seed the cache and re-shipping or journaling this clock skips
        # the payload encoder entirely.
        if clock._payload is None:
            object.__setattr__(clock, "_payload", bytes(payload))
        return clock


def decode_stream(data, *, intern: Optional[InternTable] = None) -> ClockStream:
    """Validate a stream's frame table and return its lazy clock sequence.

    The header and every frame length are checked up front (truncation and
    trailing bytes are typed errors), but frame *payloads* are not decoded
    until accessed.  A ``memoryview`` argument is handled zero-copy: every
    frame is a subview of the caller's buffer.  Pass an
    :class:`InternTable` to make repeated payloads pointer-equal across
    frames and across streams sharing the table.
    """
    info = _stream_header(data)
    view = data if isinstance(data, memoryview) else memoryview(data)
    frames = []
    pos = STREAM_HEADER_SIZE
    total = len(view)
    for index in range(info.frame_count):
        if pos + 4 > total:
            raise EnvelopeTruncatedError(
                f"stream truncated in the length prefix of frame {index} "
                f"({info.frame_count} frames declared)"
            )
        size = int.from_bytes(view[pos : pos + 4], "big")
        pos += 4
        if pos + size > total:
            raise EnvelopeTruncatedError(
                f"stream frame {index} declares {size} payload bytes but "
                f"only {total - pos} remain"
            )
        frames.append(view[pos : pos + size])
        pos += size
    if pos != total:
        raise EnvelopeError(
            f"{total - pos} trailing bytes after the declared "
            f"{info.frame_count} stream frames"
        )
    entry = family(info.family)
    return ClockStream(info, frames, entry.decoder, entry.tag, intern)


class IncrementalStreamDecoder:
    """Feed a stream's bytes as they arrive; validate as early as possible.

    An asynchronous reader receives a ``"CS"`` stream in arbitrary chunks
    (link MTU, bandwidth slices, socket reads).  :func:`decode_stream`
    needs the whole buffer; this decoder accepts the bytes **incrementally**
    via :meth:`feed` and raises the same typed rejections at the earliest
    moment they are decidable:

    * bad magic after 2 bytes, unsupported version after 3, an unknown
      family tag after 4 -- a daemon drops a garbage transfer before the
      body has even arrived;
    * :attr:`info` is available as soon as the 12-byte header is complete
      (the streaming peek of :func:`stream_info`), so the receiver can
      classify the batch -- family, epoch, frame count -- mid-flight and
      detect an epoch straggler early;
    * the frame table is walked as bytes arrive: :attr:`frames_ready`
      counts fully buffered frames, and trailing bytes beyond the declared
      frames are rejected on the chunk that carries them.

    :meth:`finish` returns the same lazy, intern-aware
    :class:`ClockStream` that :func:`decode_stream` would have produced
    for the concatenated bytes -- the two paths are equivalent by
    construction, which is what lets the async replica daemon share the
    synchronous engine's merge logic bit for bit.  A decoder that has
    raised is spent: further use raises :class:`EnvelopeError`.
    """

    __slots__ = ("_buffer", "_info", "_entry", "_frames", "_pos", "_failed")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._info: Optional[StreamInfo] = None
        self._entry = None
        # Parsed frames as (start, end) offsets into the buffer; offsets
        # (not memoryviews) because the bytearray reallocates as it grows.
        self._frames: List[tuple] = []
        self._pos = STREAM_HEADER_SIZE
        self._failed = False

    def _fail(self, error: EncodingError) -> "EncodingError":
        self._failed = True
        return error

    @property
    def info(self) -> Optional[StreamInfo]:
        """The header fields, or ``None`` while the header is incomplete."""
        return self._info

    @property
    def frames_ready(self) -> int:
        """How many frames are fully buffered so far."""
        return len(self._frames)

    @property
    def bytes_received(self) -> int:
        """Total bytes fed so far."""
        return len(self._buffer)

    @property
    def is_complete(self) -> bool:
        """Whether every declared frame has fully arrived."""
        return (
            self._info is not None
            and len(self._frames) == self._info.frame_count
            and self._pos == len(self._buffer)
        )

    def feed(self, chunk) -> int:
        """Absorb the next chunk of the stream; returns :attr:`frames_ready`.

        Raises the typed rejection of the first malformed byte as soon as
        the prefix received so far proves the stream bad -- the same error
        :func:`decode_stream` would raise for any completion of it.
        """
        if self._failed:
            raise EnvelopeError("this stream decoder already rejected its input")
        if not isinstance(chunk, (bytes, bytearray, memoryview)):
            raise self._fail(
                EnvelopeError(
                    f"streams are byte strings, got {type(chunk).__name__}"
                )
            )
        self._buffer.extend(chunk)
        buffer = self._buffer
        if self._info is None:
            # Early header validation: each field is checked the moment its
            # bytes exist, without waiting for the full 12-byte header.
            if len(buffer) >= 2 and bytes(buffer[:2]) != STREAM_MAGIC:
                raise self._fail(
                    EnvelopeMagicError(
                        f"bad stream magic {bytes(buffer[:2])!r} "
                        f"(expected {STREAM_MAGIC!r})"
                    )
                )
            if len(buffer) >= 3:
                version = buffer[2]
                if version == 0 or version > STREAM_FORMAT_VERSION:
                    raise self._fail(
                        EnvelopeVersionError(
                            f"stream format version {version} is not supported "
                            f"(this library speaks versions "
                            f"1..{STREAM_FORMAT_VERSION})"
                        )
                    )
            if len(buffer) >= 4:
                try:
                    self._entry = family_by_tag(buffer[3])
                except EncodingError as error:
                    raise self._fail(error)
            if len(buffer) < STREAM_HEADER_SIZE:
                return 0
            self._info = _stream_header(bytes(buffer[:STREAM_HEADER_SIZE]))
        info = self._info
        total = len(buffer)
        # Walk as much of the frame table as the buffered bytes cover.
        while len(self._frames) < info.frame_count:
            pos = self._pos
            if pos + 4 > total:
                return len(self._frames)
            size = int.from_bytes(buffer[pos : pos + 4], "big")
            if pos + 4 + size > total:
                return len(self._frames)
            self._frames.append((pos + 4, pos + 4 + size))
            self._pos = pos + 4 + size
        if self._pos != total:
            raise self._fail(
                EnvelopeError(
                    f"{total - self._pos} trailing bytes after the declared "
                    f"{info.frame_count} stream frames"
                )
            )
        return len(self._frames)

    def finish(self, *, intern: Optional[InternTable] = None) -> ClockStream:
        """The completed stream as a lazy :class:`ClockStream`.

        Equivalent to ``decode_stream(b"".join(chunks), intern=intern)``;
        raises :class:`EnvelopeTruncatedError` while frames are missing.
        """
        if self._failed:
            raise EnvelopeError("this stream decoder already rejected its input")
        info = self._info
        if info is None:
            raise EnvelopeTruncatedError(
                f"stream header needs {STREAM_HEADER_SIZE} bytes, got "
                f"{len(self._buffer)}"
            )
        if not self.is_complete:
            index = len(self._frames)
            raise EnvelopeTruncatedError(
                f"stream truncated in frame {index} "
                f"({info.frame_count} frames declared, {index} complete)"
            )
        view = memoryview(bytes(self._buffer))
        frames = [view[start:end] for start, end in self._frames]
        return ClockStream(info, frames, self._entry.decoder, self._entry.tag, intern)
