"""The versioned, self-describing, epoch-tagged wire envelope.

Every kernel clock serializes to one common frame so a receiver can tell --
before touching the payload -- what it is holding, whether it can decode it,
and which re-rooting epoch it belongs to::

    offset  size  field
    ------  ----  ----------------------------------------------------------
         0     2  magic  b"CK"
         2     1  format version (currently 1)
         3     1  clock-family wire tag (see repro.kernel.registry)
         4     4  re-rooting epoch, big-endian unsigned
         8     4  payload length, big-endian unsigned
        12     n  family payload (each family's compact binary codec)

Rejection is always a typed :class:`~repro.core.errors.EncodingError`
subclass, one per reason:

* wrong magic                     -> :class:`EnvelopeMagicError`
* version this library predates   -> :class:`EnvelopeVersionError`
* unknown family tag              -> :class:`UnknownClockFamily`
* header/payload shorter than declared -> :class:`EnvelopeTruncatedError`
* trailing bytes or a payload the family codec rejects -> plain
  :class:`EnvelopeError` / the codec's own ``EncodingError``

The epoch field is what decentralized re-rooting gossips on: the frame
carries it unconditionally, ``compare``/``join`` across mismatched epochs
raise :class:`~repro.core.errors.EpochMismatch` at the kernel layer, and
the replication layer upgrades stale-epoch stragglers lazily during
anti-entropy instead of erroring (epoch bumps only happen at common
knowledge -- see :meth:`repro.replication.synchronizer.AntiEntropy.
compact_key`), so a re-rooted replica and a straggler reconcile cleanly.
"""

from __future__ import annotations

from typing import NamedTuple

from ..core.errors import (
    EncodingError,
    EnvelopeError,
    EnvelopeMagicError,
    EnvelopeTruncatedError,
    EnvelopeVersionError,
    ReproError,
)
from .clocks import KernelClock
from .registry import family, family_by_tag

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "HEADER_SIZE",
    "EnvelopeInfo",
    "encode_envelope",
    "decode_envelope",
    "envelope_info",
]

MAGIC = b"CK"
FORMAT_VERSION = 1
HEADER_SIZE = 12

_MAX_EPOCH = (1 << 32) - 1


class EnvelopeInfo(NamedTuple):
    """The header fields of an envelope, decoded without touching the payload."""

    family: str
    format_version: int
    epoch: int
    payload_size: int


def encode_envelope(clock: KernelClock) -> bytes:
    """Frame ``clock`` as a self-describing wire envelope."""
    entry = family(clock.family)
    if clock.epoch > _MAX_EPOCH:
        raise EnvelopeError(
            f"epoch {clock.epoch} exceeds the 32-bit envelope field"
        )
    payload = clock.payload_bytes()
    return b"".join(
        (
            MAGIC,
            bytes((FORMAT_VERSION, entry.tag)),
            clock.epoch.to_bytes(4, "big"),
            len(payload).to_bytes(4, "big"),
            payload,
        )
    )


def _header(data) -> EnvelopeInfo:
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise EnvelopeError(
            f"envelopes are byte strings, got {type(data).__name__}"
        )
    if len(data) < HEADER_SIZE:
        raise EnvelopeTruncatedError(
            f"envelope header needs {HEADER_SIZE} bytes, got {len(data)}"
        )
    # Slices of bytearray/memoryview compare content-equal against bytes,
    # so the header is validated in place -- no bytes() copy of the data.
    if data[:2] != MAGIC:
        raise EnvelopeMagicError(
            f"bad envelope magic {bytes(data[:2])!r} (expected {MAGIC!r})"
        )
    version = data[2]
    if version == 0 or version > FORMAT_VERSION:
        raise EnvelopeVersionError(
            f"envelope format version {version} is not supported "
            f"(this library speaks versions 1..{FORMAT_VERSION})"
        )
    entry = family_by_tag(data[3])
    epoch = int.from_bytes(data[4:8], "big")
    payload_size = int.from_bytes(data[8:12], "big")
    return EnvelopeInfo(entry.name, version, epoch, payload_size)


def envelope_info(data) -> EnvelopeInfo:
    """Decode only the envelope header (family, version, epoch, payload size).

    Accepts any byte buffer (``bytes``/``bytearray``/``memoryview``) and
    never copies it.  Useful for routing and for straggler detection: a
    synchronizer can spot an epoch mismatch without paying for payload
    decoding.
    """
    info = _header(data)
    if len(data) - HEADER_SIZE < info.payload_size:
        raise EnvelopeTruncatedError(
            f"envelope declares a {info.payload_size}-byte payload but only "
            f"{len(data) - HEADER_SIZE} bytes follow the header"
        )
    return info


def decode_envelope(data) -> KernelClock:
    """Decode an envelope back into a kernel clock.

    The inverse of :func:`encode_envelope`; rejects trailing bytes so a
    framing bug cannot silently drop data.  A ``memoryview`` argument is
    decoded zero-copy: the payload passed to the family codec is a subview
    of the caller's buffer, never a duplicate.  The header checks are
    inlined (rather than delegated to :func:`envelope_info`) because this
    sits on the per-message hot path of every replication exchange.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise EnvelopeError(
            f"envelopes are byte strings, got {type(data).__name__}"
        )
    size = len(data)
    if size < HEADER_SIZE:
        raise EnvelopeTruncatedError(
            f"envelope header needs {HEADER_SIZE} bytes, got {size}"
        )
    if data[:2] != MAGIC:
        raise EnvelopeMagicError(
            f"bad envelope magic {bytes(data[:2])!r} (expected {MAGIC!r})"
        )
    version = data[2]
    if version == 0 or version > FORMAT_VERSION:
        raise EnvelopeVersionError(
            f"envelope format version {version} is not supported "
            f"(this library speaks versions 1..{FORMAT_VERSION})"
        )
    entry = family_by_tag(data[3])
    # One conversion covers both u32 fields: epoch | payload length.
    packed = int.from_bytes(data[4:12], "big")
    payload_size = packed & 0xFFFFFFFF
    body = size - HEADER_SIZE
    if body < payload_size:
        raise EnvelopeTruncatedError(
            f"envelope declares a {payload_size}-byte payload but only "
            f"{body} bytes follow the header"
        )
    if body > payload_size:
        raise EnvelopeError(
            f"{body - payload_size} trailing bytes after the declared payload"
        )
    try:
        clock = entry.decoder(data[HEADER_SIZE:], packed >> 32)
    except ReproError:
        raise
    except Exception as exc:  # noqa: BLE001 - codecs must not leak raw errors
        raise EncodingError(
            f"malformed {entry.name!r} payload: {exc}"
        ) from exc
    # Seed the encode caches with the wire bytes just validated.  The
    # payload codecs are canonical (decode-then-encode is the identity),
    # so this is pure memoization -- and it makes re-encoding a received
    # clock (re-shipping it, journaling it to a durable store) a cache
    # hit instead of a fresh payload encode.
    if clock._payload is None:
        object.__setattr__(clock, "_payload", bytes(data[HEADER_SIZE:]))
    if clock._wire is None:
        object.__setattr__(clock, "_wire", bytes(data))
    return clock
