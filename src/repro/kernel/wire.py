"""Low-level byte helpers shared by the kernel clock payload codecs.

Every clock family serializes its payload through these primitives so that
malformed input is always reported as a typed
:class:`~repro.core.errors.EncodingError` subclass -- a truncated or
corrupted payload must never surface as a raw ``struct.error`` or
``IndexError``.  The envelope (:mod:`repro.kernel.envelope`) frames the
payloads these helpers produce.

Conventions:

* unsigned LEB128 varints for counts and counters;
* fixed big-endian slots for identifiers whose *width* is part of the cost
  model (e.g. the 128-bit replica identifiers of the dynamic-VV family and
  the 64-bit event identifiers of the causal-history oracle);
* bit streams packed most-significant-bit first with an explicit bit count,
  for the trie/tree codecs that are not byte-aligned.

Fast path
---------
A bit stream travels through this module as a **packed pair** ``(value,
count)``: one arbitrary-precision integer holding the bits MSB-first (bit
``i`` of the stream is ``(value >> (count - 1 - i)) & 1``) plus the exact
bit count.  Packing to bytes is then a single ``int.to_bytes`` and
unpacking a single ``int.from_bytes`` -- no per-bit Python loop, no
intermediate list of 0/1 ints -- and every function accepts a
``memoryview`` so decoding slices an envelope without copying it.  The
historical list-of-bits API (:func:`pack_bits`, :func:`unpack_bits`, ...)
is kept as the readable reference implementation; the differential tests
in ``tests/core/test_encoding.py`` pin the two forms to identical bytes.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from ..core.errors import EnvelopeTruncatedError, EncodingError

__all__ = [
    "ByteReader",
    "append_uvarint",
    "pack_bits",
    "unpack_bits",
    "bits_to_length_prefixed",
    "bits_from_length_prefixed",
    "packed_to_length_prefixed",
    "packed_from_length_prefixed",
]

Buffer = Union[bytes, bytearray, memoryview]


def append_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` as an unsigned LEB128 varint."""
    if value < 0:
        raise EncodingError(f"varints encode non-negative integers, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def pack_bits(bits: List[int]) -> bytes:
    """Pack a 0/1 list MSB-first, padding the final byte with zeros."""
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise EncodingError(f"bit streams may only contain 0/1, got {bit!r}")
        value = (value << 1) | bit
    count = len(bits)
    pad = (-count) % 8
    return (value << pad).to_bytes((count + 7) // 8, "big")


def unpack_bits(payload: Buffer, count: int) -> List[int]:
    """Invert :func:`pack_bits`: read ``count`` bits MSB-first."""
    if len(payload) * 8 < count:
        raise EnvelopeTruncatedError(
            f"bit stream declares {count} bits but only carries {len(payload) * 8}"
        )
    value = int.from_bytes(payload, "big") >> (len(payload) * 8 - count)
    return [(value >> (count - 1 - i)) & 1 for i in range(count)]


def packed_to_length_prefixed(value: int, count: int, *, count_bytes: int) -> bytes:
    """A packed ``(value, count)`` bit stream as bit count + packed bits.

    The fast form of :func:`bits_to_length_prefixed`: one shift and one
    bulk ``int.to_bytes`` instead of a per-bit loop.
    """
    if count >= 1 << (8 * count_bytes):
        raise EncodingError(
            f"bit stream too large for the {8 * count_bytes}-bit length prefix"
        )
    pad = (-count) % 8
    return count.to_bytes(count_bytes, "big") + (value << pad).to_bytes(
        (count + 7) // 8, "big"
    )


def packed_from_length_prefixed(
    payload: Buffer, *, count_bytes: int
) -> Tuple[int, int]:
    """Invert :func:`packed_to_length_prefixed`, enforcing canonical form.

    Returns the packed ``(value, count)`` pair after one bulk
    ``int.from_bytes`` conversion.  Rejects (with typed errors) a
    missing/short prefix, a body whose byte length disagrees with the
    declared bit count, and nonzero padding bits in the final byte.
    Accepts any buffer (``bytes``/``bytearray``/``memoryview``) without
    copying it.
    """
    if len(payload) < count_bytes:
        raise EnvelopeTruncatedError(
            f"packed bit stream needs a {count_bytes}-byte length prefix, "
            f"got {len(payload)} bytes"
        )
    count = int.from_bytes(payload[:count_bytes], "big")
    body = payload[count_bytes:]
    if (count + 7) // 8 != len(body):
        raise EncodingError(
            f"payload declares {count} bits but carries {len(body)} bytes"
        )
    padded = int.from_bytes(body, "big")
    pad = (-count) % 8
    if padded & ((1 << pad) - 1):
        raise EncodingError("nonzero padding bits in the final payload byte")
    return padded >> pad, count


def bits_to_length_prefixed(bits: List[int], *, count_bytes: int) -> bytes:
    """A bit stream as a fixed-width big-endian bit count + packed bits.

    The one canonical byte form of a bit-level codec (version-stamp tries,
    ITC trees): the count is exact, the final byte is zero-padded, and
    :func:`bits_from_length_prefixed` rejects any deviation -- so distinct
    byte strings never decode to equal values.
    """
    if len(bits) >= 1 << (8 * count_bytes):
        raise EncodingError(
            f"bit stream too large for the {8 * count_bytes}-bit length prefix"
        )
    return len(bits).to_bytes(count_bytes, "big") + pack_bits(bits)


def bits_from_length_prefixed(payload: Buffer, *, count_bytes: int) -> List[int]:
    """Invert :func:`bits_to_length_prefixed`, enforcing canonical form.

    Rejects (with typed errors) a missing/short prefix, a body whose byte
    length disagrees with the declared bit count, and nonzero padding bits
    in the final byte.
    """
    value, count = packed_from_length_prefixed(payload, count_bytes=count_bytes)
    return [(value >> (count - 1 - i)) & 1 for i in range(count)]


class ByteReader:
    """Sequential bounds-checked reader over a payload.

    Accepts any byte buffer; a ``memoryview`` is read in place (``take``
    returns zero-copy subviews), so decoding a frame sliced out of a batch
    never duplicates the batch.  All read failures raise
    :class:`EnvelopeTruncatedError` so family decoders never leak raw
    slicing errors.
    """

    __slots__ = ("_data", "_pos")

    def __init__(self, data: Buffer) -> None:
        self._data = data
        self._pos = 0

    def take(self, size: int) -> Buffer:
        if size < 0 or self._pos + size > len(self._data):
            raise EnvelopeTruncatedError(
                f"payload truncated: needed {size} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos : self._pos + size]
        self._pos += size
        return chunk

    def uvarint(self, *, max_bits: int = 64) -> int:
        value = 0
        shift = 0
        while True:
            if self._pos >= len(self._data):
                raise EnvelopeTruncatedError(
                    f"payload truncated inside a varint at offset {self._pos}"
                )
            byte = self._data[self._pos]
            self._pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                # Canonical LEB128: the encoder never emits a redundant
                # zero high group, so a multi-byte varint ending in 0x00
                # is a second spelling of a smaller value -- reject it,
                # or two distinct byte strings would decode equal.
                if byte == 0 and shift:
                    raise EncodingError(
                        f"non-minimal varint encoding at offset {self._pos}"
                    )
                break
            shift += 7
            if shift >= max_bits:
                raise EncodingError(
                    f"varint wider than {max_bits} bits at offset {self._pos}"
                )
        if value.bit_length() > max_bits:
            raise EncodingError(
                f"varint value {value} wider than {max_bits} bits "
                f"at offset {self._pos}"
            )
        return value

    def fixed_uint(self, size: int) -> int:
        return int.from_bytes(self.take(size), "big")

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def expect_exhausted(self, context: str) -> None:
        if self.remaining():
            raise EncodingError(
                f"{self.remaining()} trailing bytes after decoding {context}"
            )
