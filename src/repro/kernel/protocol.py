"""The unified ``CausalityClock`` kernel protocol.

The repo reproduces a whole *family* of causality trackers -- version stamps
(the paper's mechanism), interval tree clocks, dynamic version vectors and
the causal-history oracle -- and every consumer layer used to be hard-wired
to ``core.VersionStamp`` with ad-hoc adapter shims.  This module defines the
one public contract they all share, phrased in the paper's fork/event/join
vocabulary (Definition 4.3 calls ``event`` *update*):

* ``fork()``               -- split into two clocks with autonomous identities;
* ``event()``              -- record one local update;
* ``join(other)``          -- merge the knowledge of two clocks;
* ``compare(other)``       -- the frontier pre-order, as a
  :class:`PartialOrder` (equal / before / after / concurrent);
* ``encoded_size_bits()``  -- exact size of the clock's compact binary
  payload, the common yardstick of the space experiments;
* ``to_bytes()`` / ``from_bytes()`` -- the versioned, epoch-tagged wire
  envelope (:mod:`repro.kernel.envelope`).

Clocks are immutable values: every operation returns new instances.  Each
clock also carries

* ``family`` -- the registry name of its clock family (e.g.
  ``"version-stamp"``), doubling as the envelope's family tag; and
* ``epoch``  -- the re-rooting epoch tag.  Re-rooting garbage collection
  (Section 7) rewrites every live stamp onto fresh identifiers; clocks from
  different epochs describe different identifier spaces, so ``compare`` and
  ``join`` across mismatched epochs raise
  :class:`~repro.core.errors.EpochMismatch` instead of returning garbage.
  The envelope carries the epoch so stragglers can be detected on the wire;
  lazily *upgrading* them is the decentralized re-rooting follow-up.

:class:`CausalityClock` is a :class:`typing.Protocol`, so conformance is
structural: ``isinstance(clock, CausalityClock)`` works on any object with
the right surface, including the concrete implementations in
:mod:`repro.kernel.clocks`.
"""

from __future__ import annotations

from typing import Protocol, Tuple, runtime_checkable

from ..core.order import Ordering

__all__ = ["CausalityClock", "PartialOrder"]

#: The four-way outcome of a causal comparison.  This is the same
#: :class:`~repro.core.order.Ordering` every mechanism in the repo already
#: speaks; the kernel exposes it under the protocol's name.
PartialOrder = Ordering


@runtime_checkable
class CausalityClock(Protocol):
    """Structural protocol implemented by every registered clock family."""

    @property
    def family(self) -> str:
        """Registry name of this clock's family (the envelope family tag)."""

    @property
    def epoch(self) -> int:
        """The re-rooting epoch this clock belongs to."""

    def fork(self) -> Tuple["CausalityClock", "CausalityClock"]:
        """Split into two clocks with distinct, autonomous identities."""

    def event(self) -> "CausalityClock":
        """Record one local update (the paper's *update* operation)."""

    def join(self, other: "CausalityClock") -> "CausalityClock":
        """Merge with ``other``; both inputs are retired by the merge."""

    def compare(self, other: "CausalityClock") -> PartialOrder:
        """Three-way comparison of update knowledge (the frontier pre-order)."""

    def encoded_size_bits(self) -> int:
        """Exact bit size of this clock's compact binary wire payload."""

    def to_bytes(self) -> bytes:
        """Serialize as a self-describing, versioned, epoch-tagged envelope."""

    def with_epoch(self, epoch: int) -> "CausalityClock":
        """The same clock state tagged with another re-rooting epoch."""
