"""Mechanism adapters: one uniform driver interface over every clock family.

Historically each causality mechanism needed a hand-written adapter wiring
its private API (``Frontier``, ``DynamicVVSystem``, raw ``ITCStamp`` dicts,
...) to the lockstep runner.  With the :mod:`repro.kernel` protocol in place
a single generic :class:`KernelClockAdapter` drives *any* registered clock
family through ``fork``/``event``/``join``/``compare`` alone -- pass a
family name and every replication scenario, lockstep trace and size curve
runs over it (that is the CLI's ``simulate --clock`` flag).

The specialised adapters are retained where they measure something the
protocol deliberately does not expose:

* :class:`CausalAdapter` / :class:`RefCausalAdapter` -- the oracle, with its
  bulk ``comparison_table`` fast path;
* :class:`StampAdapter` / :class:`RerootingStampAdapter` -- version stamps
  driven through :class:`~repro.core.frontier.Frontier`, including the
  Section 7 re-rooting GC and the I1-I3 invariant self-check;
* :class:`DynamicVVAdapter` -- the identifier-*authority* baseline, whose
  forks can fail under partition (the kernel's ``vv-dynamic`` family
  allocates identifiers locally and never fails);
* :class:`PlausibleAdapter` / :class:`LamportAdapter` -- the lossy
  contrast baselines.

Importing these names from :mod:`repro.sim.runner` still works but emits a
:class:`DeprecationWarning`; import from here (or :mod:`repro.sim`) instead.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..causal.configuration import CausalConfiguration
from ..causal.refhistory import RefCausalConfiguration
from ..core.errors import SimulationError
from ..core.frontier import Frontier
from ..core.invariants import check_all
from ..core.order import Ordering
from ..itc.stamp import ITCStamp
from ..vv.dynamic_vv import DynamicVVSystem
from ..vv.id_source import CentralIdSource, IdSource
from ..vv.lamport import LamportClock
from ..vv.plausible import PlausibleClock
from .clocks import KernelClock
from .registry import make

__all__ = [
    "MechanismAdapter",
    "CausalAdapter",
    "RefCausalAdapter",
    "StampAdapter",
    "RerootingStampAdapter",
    "DynamicVVAdapter",
    "ITCAdapter",
    "PlausibleAdapter",
    "LamportAdapter",
    "KernelClockAdapter",
    "default_adapters",
    "kernel_adapters",
]


class MechanismAdapter:
    """Uniform driver interface: replay trace operations, answer comparisons."""

    #: Short name used in reports and benchmark tables.
    name = "mechanism"

    def start(self, seed: str) -> None:
        """Initialize with a single element labelled ``seed``."""
        raise NotImplementedError

    def apply(self, operation) -> None:
        """Apply one trace operation."""
        raise NotImplementedError

    def labels(self) -> List[str]:
        """Labels of the currently coexisting elements."""
        raise NotImplementedError

    def compare(self, first: str, second: str) -> Ordering:
        """Pairwise comparison of two live elements."""
        raise NotImplementedError

    def comparison_table(self) -> Optional[Mapping[str, object]]:
        """Optional label -> comparable mapping for bulk comparisons.

        When an adapter can expose its live elements as objects with a
        ``compare`` method, the lockstep runner compares through this table
        directly, skipping the per-call label resolution of :meth:`compare`.
        Returning ``None`` (the default) keeps the label-based path.
        """
        return None

    def size_in_bits(self, label: str) -> int:
        """Metadata size of one live element (0 when not meaningful)."""
        return 0

    def check_invariants(self) -> bool:
        """Mechanism-specific self-check (True when nothing is violated)."""
        return True


class KernelClockAdapter(MechanismAdapter):
    """Drive any registered clock family through the kernel protocol alone.

    The adapter holds one :class:`~repro.kernel.clocks.KernelClock` per live
    label and replays trace operations with nothing but the protocol's
    ``fork``/``event``/``join``; sizes come from ``encoded_size_bits()``,
    the exact wire-payload bit count, so every family is measured by the
    same yardstick.

    Parameters
    ----------
    family:
        Registry name passed to :func:`repro.kernel.make`.
    name:
        Report name; defaults to the family name.
    **make_kwargs:
        Extra arguments for the family factory (e.g. ``reducing=False``).
    """

    def __init__(self, family: str, *, name: Optional[str] = None, **make_kwargs):
        self.family = family
        if name is None:
            # The lockstep runner keys its report/cache tables by adapter
            # name, so the mechanism under test must not collide with the
            # oracle (whose name is "causal-history").
            name = family if family != "causal-history" else "causal-history-kernel"
        self.name = name
        self._make_kwargs = dict(make_kwargs)
        self._clocks: Dict[str, KernelClock] = {}

    def clock_of(self, label: str) -> KernelClock:
        """The live clock registered under ``label``."""
        try:
            return self._clocks[label]
        except KeyError:
            raise SimulationError(
                f"{self.name} adapter has no element {label!r}"
            ) from None

    def start(self, seed: str) -> None:
        self._clocks = {seed: make(self.family, **self._make_kwargs)}

    def _take(self, label: str) -> KernelClock:
        try:
            return self._clocks.pop(label)
        except KeyError:
            raise SimulationError(
                f"{self.name} adapter has no element {label!r}"
            ) from None

    def apply(self, operation) -> None:
        from ..sim.trace import OpKind

        if operation.kind == OpKind.UPDATE:
            self._clocks[operation.results[0]] = self._take(operation.source).event()
        elif operation.kind == OpKind.FORK:
            left, right = self._take(operation.source).fork()
            self._clocks[operation.results[0]] = left
            self._clocks[operation.results[1]] = right
        elif operation.kind == OpKind.JOIN:
            first = self._take(operation.source)
            second = self._take(operation.other)
            self._clocks[operation.results[0]] = first.join(second)
        else:
            first = self._take(operation.source)
            second = self._take(operation.other)
            left, right = first.join(second).fork()
            self._clocks[operation.results[0]] = left
            self._clocks[operation.results[1]] = right

    def labels(self) -> List[str]:
        return list(self._clocks)

    def compare(self, first: str, second: str) -> Ordering:
        return self.clock_of(first).compare(self.clock_of(second))

    def comparison_table(self) -> Mapping[str, KernelClock]:
        return self._clocks

    def size_in_bits(self, label: str) -> int:
        return self.clock_of(label).encoded_size_bits()


class CausalAdapter(MechanismAdapter):
    """The causal-history oracle (global view), bitset-backed."""

    name = "causal-history"

    #: The configuration implementation this adapter drives.
    configuration_class = CausalConfiguration

    def __init__(self) -> None:
        self._configuration = None

    @property
    def configuration(self):
        if self._configuration is None:
            raise SimulationError("adapter not started")
        return self._configuration

    def start(self, seed: str) -> None:
        self._configuration = self.configuration_class.initial(seed)

    def apply(self, operation) -> None:
        from ..sim.trace import apply_operation

        apply_operation(self.configuration, operation)

    def labels(self) -> List[str]:
        return self.configuration.labels()

    def compare(self, first: str, second: str) -> Ordering:
        return self.configuration.compare(first, second)

    def comparison_table(self) -> Mapping[str, object]:
        return self.configuration.histories_view()

    def size_in_bits(self, label: str) -> int:
        # One event identifier is modelled as a 64-bit value; ``event_count``
        # is a cached popcount, so no event set is ever materialized here.
        # This matches the causal-history kernel family's wire format (one
        # 64-bit identity per event) up to the count varint.
        return 64 * self.configuration.history_of(label).event_count


class RefCausalAdapter(CausalAdapter):
    """The seed frozenset oracle, kept as a differential/perf baseline."""

    name = "causal-history-ref"

    configuration_class = RefCausalConfiguration

    def size_in_bits(self, label: str) -> int:
        return 64 * len(self.configuration.history_of(label).events)


class StampAdapter(MechanismAdapter):
    """Version stamps, in either the reducing or the non-reducing flavour."""

    def __init__(self, *, reducing: bool = True) -> None:
        self._reducing = reducing
        self.name = "version-stamps" if reducing else "version-stamps-nonreducing"
        self._frontier: Optional[Frontier] = None

    @property
    def frontier(self) -> Frontier:
        if self._frontier is None:
            raise SimulationError("adapter not started")
        return self._frontier

    def start(self, seed: str) -> None:
        self._frontier = Frontier.initial(seed, reducing=self._reducing)

    def apply(self, operation) -> None:
        from ..sim.trace import apply_operation

        apply_operation(self.frontier, operation)

    def labels(self) -> List[str]:
        return self.frontier.labels()

    def compare(self, first: str, second: str) -> Ordering:
        return self.frontier.compare(first, second)

    def size_in_bits(self, label: str) -> int:
        return self.frontier.stamp_of(label).size_in_bits()

    def check_invariants(self) -> bool:
        return check_all(self.frontier.stamps()).ok


class RerootingStampAdapter(StampAdapter):
    """Reducing version stamps with the Section 7 re-rooting GC enabled.

    Drives a :class:`~repro.core.frontier.Frontier` whose automatic re-root
    fires whenever any live stamp's encoded size exceeds ``threshold``
    bits.  Run
    alongside a plain :class:`StampAdapter` in one lockstep replay this
    measures GC'd and raw stamps side by side on the same trace -- and
    because the runner cross-checks every mechanism against the causal
    oracle after every step, it *proves* on that trace that re-rooting
    preserved the frontier ordering (the re-rooted stamps must keep a 100%
    agreement rate with ground truth for the whole run).
    """

    def __init__(self, *, threshold: int = 256) -> None:
        super().__init__(reducing=True)
        self.name = f"version-stamps-rerooting-{threshold}"
        self._threshold = threshold

    @property
    def threshold(self) -> int:
        """The re-root trigger: largest allowed stamp, in encoded bits."""
        return self._threshold

    @property
    def reroots_performed(self) -> int:
        """How many re-roots the replay has triggered so far."""
        return self.frontier.reroots_performed

    def start(self, seed: str) -> None:
        self._frontier = Frontier.initial(
            seed, reducing=True, reroot_threshold=self._threshold
        )


class DynamicVVAdapter(MechanismAdapter):
    """Dynamic version vectors driven by an identifier source.

    This baseline keeps the identifier-*authority* model (forks must obtain
    an id from an :class:`IdSource` and can fail under partition); the
    kernel's ``vv-dynamic`` family is the same mechanism with local
    UUID-sized allocation instead.
    """

    name = "dynamic-version-vectors"

    def __init__(self, id_source: Optional[IdSource] = None) -> None:
        self._id_source = id_source
        self._system: Optional[DynamicVVSystem] = None

    @property
    def system(self) -> DynamicVVSystem:
        if self._system is None:
            raise SimulationError("adapter not started")
        return self._system

    def start(self, seed: str) -> None:
        source = self._id_source if self._id_source is not None else CentralIdSource()
        self._system = DynamicVVSystem.initial(seed, id_source=source)

    def apply(self, operation) -> None:
        from ..sim.trace import OpKind

        system = self.system
        if operation.kind == OpKind.UPDATE:
            system.update(operation.source, operation.results[0])
        elif operation.kind == OpKind.FORK:
            system.fork(operation.source, *operation.results)
        elif operation.kind == OpKind.JOIN:
            system.join(operation.source, operation.other, operation.results[0])
        else:
            joined = system.join(operation.source, operation.other)
            system.fork(joined, *operation.results)

    def labels(self) -> List[str]:
        return self.system.labels()

    def compare(self, first: str, second: str) -> Ordering:
        return self.system.compare(first, second)

    def size_in_bits(self, label: str) -> int:
        return self.system.element(label).size_in_bits()


class ITCAdapter(MechanismAdapter):
    """Interval Tree Clocks (the extension mechanism)."""

    name = "interval-tree-clocks"

    def __init__(self) -> None:
        self._stamps: Dict[str, ITCStamp] = {}

    def start(self, seed: str) -> None:
        self._stamps = {seed: ITCStamp.seed()}

    def _take(self, label: str) -> ITCStamp:
        try:
            return self._stamps.pop(label)
        except KeyError:
            raise SimulationError(f"ITC adapter has no element {label!r}") from None

    def apply(self, operation) -> None:
        from ..sim.trace import OpKind

        if operation.kind == OpKind.UPDATE:
            stamp = self._take(operation.source)
            self._stamps[operation.results[0]] = stamp.event()
        elif operation.kind == OpKind.FORK:
            stamp = self._take(operation.source)
            left, right = stamp.fork()
            self._stamps[operation.results[0]] = left
            self._stamps[operation.results[1]] = right
        elif operation.kind == OpKind.JOIN:
            first = self._take(operation.source)
            second = self._take(operation.other)
            self._stamps[operation.results[0]] = first.join(second)
        else:
            first = self._take(operation.source)
            second = self._take(operation.other)
            left, right = first.join(second).fork()
            self._stamps[operation.results[0]] = left
            self._stamps[operation.results[1]] = right

    def labels(self) -> List[str]:
        return list(self._stamps)

    def compare(self, first: str, second: str) -> Ordering:
        return self._stamps[first].compare(self._stamps[second])

    def size_in_bits(self, label: str) -> int:
        return self._stamps[label].size_in_bits()


class PlausibleAdapter(MechanismAdapter):
    """Plausible clocks: constant size, approximate ordering."""

    def __init__(self, entries: int = 4) -> None:
        self.name = f"plausible-clocks-{entries}"
        self._entries = entries
        self._clocks: Dict[str, PlausibleClock] = {}
        self._next_replica = 0

    def _fresh_replica_id(self) -> str:
        identifier = f"p{self._next_replica}"
        self._next_replica += 1
        return identifier

    def start(self, seed: str) -> None:
        self._clocks = {seed: PlausibleClock(self._entries, self._fresh_replica_id())}

    def _take(self, label: str) -> PlausibleClock:
        try:
            return self._clocks.pop(label)
        except KeyError:
            raise SimulationError(f"plausible adapter has no element {label!r}") from None

    def apply(self, operation) -> None:
        from ..sim.trace import OpKind

        if operation.kind == OpKind.UPDATE:
            clock = self._take(operation.source)
            self._clocks[operation.results[0]] = clock.update()
        elif operation.kind == OpKind.FORK:
            clock = self._take(operation.source)
            self._clocks[operation.results[0]] = clock
            self._clocks[operation.results[1]] = clock.for_replica(self._fresh_replica_id())
        elif operation.kind == OpKind.JOIN:
            first = self._take(operation.source)
            second = self._take(operation.other)
            self._clocks[operation.results[0]] = first.merge(second)
        else:
            first = self._take(operation.source)
            second = self._take(operation.other)
            merged = first.merge(second)
            self._clocks[operation.results[0]] = merged
            self._clocks[operation.results[1]] = merged.for_replica(
                self._fresh_replica_id()
            )

    def labels(self) -> List[str]:
        return list(self._clocks)

    def compare(self, first: str, second: str) -> Ordering:
        return self._clocks[first].compare(self._clocks[second])

    def size_in_bits(self, label: str) -> int:
        return self._clocks[label].size_in_bits()


class LamportAdapter(MechanismAdapter):
    """Scalar Lamport clocks: causality-consistent but blind to concurrency.

    Included purely as a contrast baseline -- every pair the oracle reports
    as concurrent is (arbitrarily) ordered by a scalar clock, so the
    agreement rate quantifies how much information the single integer loses.
    """

    name = "lamport-clocks"

    def __init__(self) -> None:
        self._clocks: Dict[str, LamportClock] = {}
        self._next_process = 0

    def _fresh_process(self) -> str:
        identifier = f"l{self._next_process}"
        self._next_process += 1
        return identifier

    def start(self, seed: str) -> None:
        self._clocks = {seed: LamportClock(0, self._fresh_process())}

    def _take(self, label: str) -> LamportClock:
        try:
            return self._clocks.pop(label)
        except KeyError:
            raise SimulationError(f"lamport adapter has no element {label!r}") from None

    def apply(self, operation) -> None:
        from ..sim.trace import OpKind

        if operation.kind == OpKind.UPDATE:
            clock = self._take(operation.source)
            self._clocks[operation.results[0]] = clock.tick()
        elif operation.kind == OpKind.FORK:
            clock = self._take(operation.source)
            self._clocks[operation.results[0]] = clock
            self._clocks[operation.results[1]] = LamportClock(
                clock.counter, self._fresh_process()
            )
        elif operation.kind == OpKind.JOIN:
            first = self._take(operation.source)
            second = self._take(operation.other)
            self._clocks[operation.results[0]] = LamportClock(
                max(first.counter, second.counter), first.process
            )
        else:
            first = self._take(operation.source)
            second = self._take(operation.other)
            merged = max(first.counter, second.counter)
            self._clocks[operation.results[0]] = LamportClock(merged, first.process)
            self._clocks[operation.results[1]] = LamportClock(merged, second.process)

    def labels(self) -> List[str]:
        return list(self._clocks)

    def compare(self, first: str, second: str) -> Ordering:
        mine = self._clocks[first]
        theirs = self._clocks[second]
        if mine.counter == theirs.counter:
            return Ordering.EQUAL
        return Ordering.BEFORE if mine.counter < theirs.counter else Ordering.AFTER

    def size_in_bits(self, label: str) -> int:
        return self._clocks[label].size_in_bits()


def default_adapters(*, include_plausible: bool = False) -> List[MechanismAdapter]:
    """The standard set of non-oracle mechanisms used by the experiments."""
    adapters: List[MechanismAdapter] = [
        StampAdapter(reducing=True),
        StampAdapter(reducing=False),
        DynamicVVAdapter(),
        ITCAdapter(),
    ]
    if include_plausible:
        adapters.append(PlausibleAdapter())
    return adapters


def kernel_adapters(
    families: Optional[List[str]] = None,
) -> List[KernelClockAdapter]:
    """One :class:`KernelClockAdapter` per registered (or named) family."""
    from .registry import families as registered_families

    names = families if families is not None else registered_families()
    return [KernelClockAdapter(name) for name in names]
