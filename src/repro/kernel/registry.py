"""The clock-family registry behind :func:`repro.kernel.make`.

Every causality mechanism the repo implements registers here under a short
stable name and a one-byte wire tag.  Consumers -- the CLI, the lockstep
runner, the replication substrate, the envelope decoder -- look families up
by name (or tag) and then speak only the
:class:`~repro.kernel.protocol.CausalityClock` protocol, which is what turns
every replication scenario, lockstep trace and size curve into a
cross-family comparison matrix driven by a single flag.

Wire tags are part of the serialization format: once a family has shipped
envelopes, its tag must never be reassigned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..core.errors import EncodingError, UnknownClockFamily
from .clocks import (
    CausalHistoryClock,
    DynamicVVClock,
    ITCClock,
    KernelClock,
    VersionStampClock,
)

__all__ = ["ClockFamily", "register", "make", "families", "family", "family_by_tag"]


@dataclass(frozen=True)
class ClockFamily:
    """One registered clock family: name, wire tag, factory and decoder."""

    name: str
    tag: int
    factory: Callable[..., KernelClock]
    decoder: Callable[[bytes, int], KernelClock]
    description: str = ""


_BY_NAME: Dict[str, ClockFamily] = {}
_BY_TAG: Dict[int, ClockFamily] = {}


def register(entry: ClockFamily) -> ClockFamily:
    """Register a clock family; names and wire tags must be unique."""
    if not 0 < entry.tag < 256:
        raise EncodingError(f"family wire tags are single bytes, got {entry.tag}")
    existing = _BY_NAME.get(entry.name)
    if existing is not None and existing is not entry:
        raise EncodingError(f"clock family {entry.name!r} is already registered")
    tagged = _BY_TAG.get(entry.tag)
    if tagged is not None and tagged is not entry:
        raise EncodingError(
            f"wire tag {entry.tag} is already taken by {tagged.name!r}"
        )
    _BY_NAME[entry.name] = entry
    _BY_TAG[entry.tag] = entry
    return entry


def families() -> List[str]:
    """The registered family names, in wire-tag order."""
    return [_BY_TAG[tag].name for tag in sorted(_BY_TAG)]


def family(name: str) -> ClockFamily:
    """Look a family up by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise UnknownClockFamily(
            f"unknown clock family {name!r} (registered: {', '.join(families())})"
        ) from None


def family_by_tag(tag: int) -> ClockFamily:
    """Look a family up by its envelope wire tag."""
    try:
        return _BY_TAG[tag]
    except KeyError:
        raise UnknownClockFamily(
            f"unknown clock family wire tag {tag} "
            f"(registered tags: {sorted(_BY_TAG)})"
        ) from None


def make(name: str, **kwargs) -> KernelClock:
    """Create the seed clock of family ``name``.

    Keyword arguments are passed to the family's factory (e.g.
    ``make("version-stamp", reducing=False)`` for the paper's non-reducing
    Section 4 model).

    Examples
    --------
    >>> from repro import kernel
    >>> clock = kernel.make("version-stamp")
    >>> left, right = clock.fork()
    >>> left.event().compare(right).name
    'AFTER'
    """
    return family(name).factory(**kwargs)


# -- the built-in families ---------------------------------------------------
# Tags are frozen wire format; never renumber.

register(
    ClockFamily(
        name="version-stamp",
        tag=1,
        factory=VersionStampClock,
        decoder=VersionStampClock._decode_payload,
        description="version stamps, the paper's decentralized mechanism",
    )
)
register(
    ClockFamily(
        name="itc",
        tag=2,
        factory=ITCClock,
        decoder=ITCClock._decode_payload,
        description="interval tree clocks, the authors' successor mechanism",
    )
)
register(
    ClockFamily(
        name="vv-dynamic",
        tag=3,
        factory=DynamicVVClock,
        decoder=DynamicVVClock._decode_payload,
        description="dynamic version vectors with UUID-sized replica ids",
    )
)
register(
    ClockFamily(
        name="causal-history",
        tag=4,
        factory=CausalHistoryClock,
        decoder=CausalHistoryClock._decode_payload,
        description="the causal-history oracle (explicit global view)",
    )
)
