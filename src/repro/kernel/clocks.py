"""Concrete :class:`~repro.kernel.protocol.CausalityClock` implementations.

One class per registered clock family, each an immutable value carrying the
family's native mechanism plus the re-rooting **epoch tag**:

* :class:`VersionStampClock`  -- the paper's version stamps (``core``);
* :class:`ITCClock`           -- Interval Tree Clocks (``itc``);
* :class:`DynamicVVClock`     -- dynamic version vectors (``vv``);
* :class:`CausalHistoryClock` -- the causal-history oracle (``causal``).

All four speak the same fork/event/join/compare calculus, serialize through
the versioned wire envelope (:mod:`repro.kernel.envelope`) and report their
size through ``encoded_size_bits()`` -- the exact bit length of the family's
compact binary payload, which is the one yardstick the space experiments
measure every family by.

Epoch semantics are uniform: ``fork``/``event``/``join`` preserve the epoch,
``compare``/``join`` across *different* epochs raise
:class:`~repro.core.errors.EpochMismatch`, and ``with_epoch`` re-tags a clock
(the hook re-rooting uses to bump a whole frontier at once).

Identity notes for the families the paper calls *identifier-dependent*:

* ``DynamicVVClock`` carries opaque 128-bit (UUID-sized) replica
  identifiers, the cost the paper's size argument charges dynamic version
  vectors for.  Identifiers are allocated *locally* by extending the
  parent's lineage path on each fork -- forks therefore never fail, unlike
  the :class:`~repro.vv.dynamic_vv.DynamicVVSystem` baseline that models a
  central allocation authority -- but each identifier still occupies a full
  fixed-width wire slot.  A lineage that forks more than 127 times in one
  unbroken line exhausts its identifier space and raises ``EncodingError``.
* ``CausalHistoryClock`` shares one process-global event arena (the
  "global view" the oracle is allowed and version stamps eliminate); events
  cost a 64-bit identity each on the wire.
"""

from __future__ import annotations

from typing import ClassVar, Dict, Tuple

from ..causal.events import EventSource
from ..causal.history import CausalHistory
from ..core.encoding import stamp_from_bytes
from ..core.errors import (
    EncodingError,
    EnvelopeTruncatedError,
    EpochMismatch,
    StampError,
)
from ..core.order import Ordering
from ..core.stamp import VersionStamp
from ..itc.encoding import itc_from_bytes
from ..itc.stamp import ITCStamp
from .wire import ByteReader, append_uvarint

__all__ = [
    "KernelClock",
    "VersionStampClock",
    "ITCClock",
    "DynamicVVClock",
    "CausalHistoryClock",
]

#: Width of one replica identifier slot in the dynamic-VV wire format.
VV_ID_BYTES = 16
#: Width of one update counter slot in the dynamic-VV wire format.
VV_COUNTER_BYTES = 4
#: Width of one event identity in the causal-history wire format.
EVENT_ID_BYTES = 8

#: Densest event index the causal-history codec will move over the wire.
#: The arena issues dense indices, so anything near the 64-bit slot ceiling
#: is corruption -- and histories are packed bitsets, so naively admitting a
#: huge index would allocate a multi-megabyte integer.  Enforced
#: symmetrically on encode and decode, so every envelope this library
#: produces is one it can read back; an arena that has genuinely issued
#: more than this many events is outside the oracle codec's domain and is
#: reported as such (with an honest message) at encode time.
MAX_EVENT_INDEX = 1 << 24

#: The process-global event arena shared by every causal-history clock --
#: the oracle's deliberate "global view" (see :mod:`repro.causal.events`).
_GLOBAL_EVENTS = EventSource()


def _uvarint_len(value: int) -> int:
    """Byte length of the LEB128 encoding of ``value``."""
    return max(1, (value.bit_length() + 6) // 7)


class KernelClock:
    """Common machinery of the kernel clock families (epoch + envelope).

    Instances are immutable values, which makes them **encode-once**: the
    compact payload, the full envelope frame, the exact payload bit size
    and the hash are each computed on first use and cached in dedicated
    slots (no instance ever grows a ``__dict__``).  A clock that is
    serialized repeatedly -- the common case in anti-entropy, where the
    same stamp is re-shipped every round until it changes -- pays for
    encoding exactly once.
    """

    #: Registry name; doubles as the envelope family tag (via the registry).
    family: ClassVar[str] = "abstract"

    __slots__ = ("_epoch", "_hash", "_wire", "_payload", "_payload_bits")

    def __init__(self, *, epoch: int = 0) -> None:
        if epoch < 0:
            raise StampError(f"epochs are non-negative, got {epoch}")
        object.__setattr__(self, "_epoch", epoch)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_wire", None)
        object.__setattr__(self, "_payload", None)
        object.__setattr__(self, "_payload_bits", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} instances are immutable")

    @property
    def epoch(self) -> int:
        """The re-rooting epoch this clock belongs to."""
        return self._epoch

    def _require_peer(self, other: "KernelClock", operation: str) -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot {operation} a {self.family!r} clock with "
                f"{type(other).__name__}"
            )
        if other._epoch != self._epoch:
            raise EpochMismatch(self._epoch, other._epoch, operation)

    # -- envelope glue ---------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize as the versioned, epoch-tagged wire envelope.

        Encode-once: the frame is built on first call and cached (the
        clock is immutable, so the bytes can never go stale).
        """
        cached = self._wire
        if cached is None:
            from .envelope import encode_envelope

            cached = encode_envelope(self)
            object.__setattr__(self, "_wire", cached)
        return cached

    @classmethod
    def from_bytes(cls, data: bytes) -> "KernelClock":
        """Decode an envelope; on a subclass, the family must match."""
        from .envelope import decode_envelope

        clock = decode_envelope(data)
        if cls is not KernelClock and not isinstance(clock, cls):
            raise EncodingError(
                f"envelope carries a {clock.family!r} clock, "
                f"not {cls.family!r}"
            )
        return clock

    # -- family payload hooks (implemented per subclass) ------------------

    def payload_bytes(self) -> bytes:
        """The family's compact binary payload (without envelope framing).

        Cached on first call; subclasses implement :meth:`_payload_bytes`.
        """
        cached = self._payload
        if cached is None:
            cached = self._payload_bytes()
            object.__setattr__(self, "_payload", cached)
        return cached

    def encoded_size_bits(self) -> int:
        """Exact bit length of the compact binary payload (cached)."""
        cached = self._payload_bits
        if cached is None:
            cached = self._encoded_size_bits()
            object.__setattr__(self, "_payload_bits", cached)
        return cached

    def _payload_bytes(self) -> bytes:
        raise NotImplementedError

    def _encoded_size_bits(self) -> int:
        raise NotImplementedError

    @classmethod
    def _blank(cls, epoch: int) -> "KernelClock":
        """Fast partial constructor for the decode hot path.

        Skips ``__init__`` (the epoch arrives from an unsigned wire field,
        so the non-negativity check is already discharged) and leaves the
        family slots for the caller to fill with ``object.__setattr__``.
        """
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "_epoch", epoch)
        _set(self, "_hash", None)
        _set(self, "_wire", None)
        _set(self, "_payload", None)
        _set(self, "_payload_bits", None)
        return self

    @classmethod
    def _decode_payload(cls, payload: bytes, epoch: int) -> "KernelClock":
        raise NotImplementedError

    def _state(self) -> Tuple:
        """Hashable family state, used for equality and hashing."""
        raise NotImplementedError

    # -- value semantics ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if type(other) is type(self):
            return self._epoch == other._epoch and self._state() == other._state()
        return NotImplemented

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((type(self).__name__, self._epoch, self._state()))
            object.__setattr__(self, "_hash", cached)
        return cached


class VersionStampClock(KernelClock):
    """The paper's version stamps behind the kernel protocol."""

    family = "version-stamp"

    __slots__ = ("_stamp",)

    def __init__(
        self,
        stamp: VersionStamp = None,
        *,
        epoch: int = 0,
        reducing: bool = True,
    ) -> None:
        super().__init__(epoch=epoch)
        if stamp is None:
            stamp = VersionStamp.seed(reducing=reducing)
        object.__setattr__(self, "_stamp", stamp)

    @property
    def stamp(self) -> VersionStamp:
        """The underlying :class:`~repro.core.stamp.VersionStamp`."""
        return self._stamp

    def __repr__(self) -> str:
        return f"VersionStampClock({self._stamp}, epoch={self._epoch})"

    def with_epoch(self, epoch: int) -> "VersionStampClock":
        return VersionStampClock(self._stamp, epoch=epoch)

    def fork(self) -> Tuple["VersionStampClock", "VersionStampClock"]:
        left, right = self._stamp.fork()
        return (
            VersionStampClock(left, epoch=self._epoch),
            VersionStampClock(right, epoch=self._epoch),
        )

    def event(self) -> "VersionStampClock":
        return VersionStampClock(self._stamp.update(), epoch=self._epoch)

    def join(self, other: "VersionStampClock") -> "VersionStampClock":
        self._require_peer(other, "join")
        return VersionStampClock(self._stamp.join(other._stamp), epoch=self._epoch)

    def compare(self, other: "VersionStampClock") -> Ordering:
        self._require_peer(other, "compare")
        return self._stamp.compare(other._stamp)

    def _encoded_size_bits(self) -> int:
        return self._stamp.encoded_size_bits()

    def _payload_bytes(self) -> bytes:
        flags = 0x01 if self._stamp.reducing else 0x00
        return bytes((flags,)) + self._stamp.to_bytes()

    @classmethod
    def _decode_payload(cls, payload: bytes, epoch: int) -> "VersionStampClock":
        if not len(payload):
            raise EnvelopeTruncatedError(
                "version-stamp payload truncated: missing the flags byte"
            )
        flags = payload[0]
        if flags & ~0x01:
            raise EncodingError(f"unknown version-stamp flags 0x{flags:02x}")
        stamp = stamp_from_bytes(payload[1:], reducing=bool(flags & 0x01))
        clock = cls._blank(epoch)
        object.__setattr__(clock, "_stamp", stamp)
        return clock

    def _state(self) -> Tuple:
        return (self._stamp, self._stamp.reducing)


class ITCClock(KernelClock):
    """Interval Tree Clocks behind the kernel protocol."""

    family = "itc"

    __slots__ = ("_stamp",)

    def __init__(self, stamp: ITCStamp = None, *, epoch: int = 0) -> None:
        super().__init__(epoch=epoch)
        if stamp is None:
            stamp = ITCStamp.seed()
        object.__setattr__(self, "_stamp", stamp)

    @property
    def stamp(self) -> ITCStamp:
        """The underlying :class:`~repro.itc.stamp.ITCStamp`."""
        return self._stamp

    def __repr__(self) -> str:
        return f"ITCClock({self._stamp!r}, epoch={self._epoch})"

    def with_epoch(self, epoch: int) -> "ITCClock":
        return ITCClock(self._stamp, epoch=epoch)

    def fork(self) -> Tuple["ITCClock", "ITCClock"]:
        left, right = self._stamp.fork()
        return ITCClock(left, epoch=self._epoch), ITCClock(right, epoch=self._epoch)

    def event(self) -> "ITCClock":
        return ITCClock(self._stamp.event(), epoch=self._epoch)

    def join(self, other: "ITCClock") -> "ITCClock":
        self._require_peer(other, "join")
        return ITCClock(self._stamp.join(other._stamp), epoch=self._epoch)

    def compare(self, other: "ITCClock") -> Ordering:
        self._require_peer(other, "compare")
        return self._stamp.compare(other._stamp)

    def _encoded_size_bits(self) -> int:
        return self._stamp.encoded_size_bits()

    def _payload_bytes(self) -> bytes:
        return self._stamp.to_bytes()

    @classmethod
    def _decode_payload(cls, payload: bytes, epoch: int) -> "ITCClock":
        clock = cls._blank(epoch)
        object.__setattr__(clock, "_stamp", itc_from_bytes(payload))
        return clock

    def _state(self) -> Tuple:
        return (repr(self._stamp.identity), repr(self._stamp.events))


class DynamicVVClock(KernelClock):
    """Dynamic version vectors behind the kernel protocol.

    The clock is a triple ``(replica id, fork count, vector)``:

    * the replica identifier is an opaque UUID-sized (128-bit) value,
      allocated locally by extending the parent's lineage path on each fork
      (the ``k``-th fork of a replica appends ``1``\\ :sup:`k` ``0`` to its
      path, which keeps every identifier ever issued unique without any
      central authority);
    * the fork count makes the *next* allocation unique and therefore
      travels with the clock on the wire;
    * the vector maps identifiers to update counters, exactly the classic
      mechanism (increment own entry on ``event``, entry-wise max on
      ``join``, entry-wise comparison for the pre-order).

    Identifiers are stored internally as sentinel-prefixed path codes (the
    :class:`~repro.core.bitstring.BitString` trick), but the wire format --
    and therefore ``encoded_size_bits()`` -- charges the full fixed slot the
    paper's size argument assigns to globally unique replica identifiers.
    """

    family = "vv-dynamic"

    __slots__ = ("_replica", "_forks", "_counters")

    #: Sentinel-prefixed path code of the seed replica (the empty path).
    _SEED_REPLICA = 1

    def __init__(
        self,
        replica: int = _SEED_REPLICA,
        forks: int = 0,
        counters: Dict[int, int] = None,
        *,
        epoch: int = 0,
    ) -> None:
        super().__init__(epoch=epoch)
        object.__setattr__(self, "_replica", replica)
        object.__setattr__(self, "_forks", forks)
        object.__setattr__(self, "_counters", dict(counters or {}))

    @property
    def replica_id(self) -> int:
        """This replica's identifier (a sentinel-prefixed lineage path code)."""
        return self._replica

    @property
    def counters(self) -> Dict[int, int]:
        """A copy of the identifier -> update-counter vector."""
        return dict(self._counters)

    def __repr__(self) -> str:
        return (
            f"DynamicVVClock(replica={self._replica:#x}, forks={self._forks}, "
            f"entries={len(self._counters)}, epoch={self._epoch})"
        )

    def with_epoch(self, epoch: int) -> "DynamicVVClock":
        return DynamicVVClock(
            self._replica, self._forks, self._counters, epoch=epoch
        )

    def fork(self) -> Tuple["DynamicVVClock", "DynamicVVClock"]:
        # The k-th fork of path p issues the fresh path p·1^k·0; p itself
        # lives on in the left child.  Fresh paths are never reissued: a
        # replica's fork counter only grows, and only live replicas fork.
        # Check the identifier-space bound *before* building the child code
        # bit by bit -- the fork counter travels on the wire, and looping
        # over an unvalidated huge value would hang here.
        if self._replica.bit_length() + self._forks + 1 > VV_ID_BYTES * 8:
            raise EncodingError(
                f"replica lineage exhausted its {VV_ID_BYTES * 8}-bit "
                f"identifier space after {self._forks + 1} forks"
            )
        child = self._replica
        for _ in range(self._forks):
            child = (child << 1) | 1
        child <<= 1
        left = DynamicVVClock(
            self._replica, self._forks + 1, self._counters, epoch=self._epoch
        )
        right = DynamicVVClock(child, 0, self._counters, epoch=self._epoch)
        return left, right

    def event(self) -> "DynamicVVClock":
        counters = dict(self._counters)
        counters[self._replica] = counters.get(self._replica, 0) + 1
        return DynamicVVClock(
            self._replica, self._forks, counters, epoch=self._epoch
        )

    def join(self, other: "DynamicVVClock") -> "DynamicVVClock":
        self._require_peer(other, "join")
        counters = dict(self._counters)
        for replica, counter in other._counters.items():
            if counter > counters.get(replica, 0):
                counters[replica] = counter
        # The join result continues the left identity; the right identity
        # retires (exactly Ratner-style retirement -- its entry lingers).
        return DynamicVVClock(
            self._replica,
            max(self._forks, other._forks if other._replica == self._replica else 0),
            counters,
            epoch=self._epoch,
        )

    def leq(self, other: "DynamicVVClock") -> bool:
        return all(
            counter <= other._counters.get(replica, 0)
            for replica, counter in self._counters.items()
        )

    def compare(self, other: "DynamicVVClock") -> Ordering:
        self._require_peer(other, "compare")
        forward = self.leq(other)
        backward = other.leq(self)
        if forward and backward:
            return Ordering.EQUAL
        if forward:
            return Ordering.BEFORE
        if backward:
            return Ordering.AFTER
        return Ordering.CONCURRENT

    def _encoded_size_bits(self) -> int:
        # Closed form of len(payload_bytes()) * 8 -- this sits on the
        # per-step size-sampling hot path, so don't build the payload.
        entries = len(self._counters)
        return 8 * (
            VV_ID_BYTES
            + _uvarint_len(self._forks)
            + _uvarint_len(entries)
            + entries * (VV_ID_BYTES + VV_COUNTER_BYTES)
        )

    def _payload_bytes(self) -> bytes:
        out = bytearray()
        out += self._id_slot(self._replica)
        append_uvarint(out, self._forks)
        append_uvarint(out, len(self._counters))
        for replica in sorted(self._counters):
            counter = self._counters[replica]
            if counter.bit_length() > VV_COUNTER_BYTES * 8:
                raise EncodingError(
                    f"update counter {counter} exceeds the "
                    f"{VV_COUNTER_BYTES * 8}-bit wire slot"
                )
            out += self._id_slot(replica)
            out += counter.to_bytes(VV_COUNTER_BYTES, "big")
        return bytes(out)

    @staticmethod
    def _id_slot(replica: int) -> bytes:
        if replica <= 0 or replica.bit_length() > VV_ID_BYTES * 8:
            raise EncodingError(
                f"replica identifier {replica:#x} does not fit the "
                f"{VV_ID_BYTES * 8}-bit wire slot"
            )
        return replica.to_bytes(VV_ID_BYTES, "big")

    @classmethod
    def _decode_payload(cls, payload: bytes, epoch: int) -> "DynamicVVClock":
        reader = ByteReader(payload)
        replica = reader.fixed_uint(VV_ID_BYTES)
        if replica == 0:
            raise EncodingError("replica identifier slot may not be zero")
        forks = reader.uvarint()
        # Any clock this library can produce satisfies the lineage bound
        # with at most one pending fork; anything larger is corruption (and
        # would make the next fork() loop over a huge counter).
        if replica.bit_length() + forks > VV_ID_BYTES * 8:
            raise EncodingError(
                f"fork counter {forks} is inconsistent with the "
                f"{VV_ID_BYTES * 8}-bit identifier space"
            )
        entries = reader.uvarint()
        counters: Dict[int, int] = {}
        previous = 0
        for _ in range(entries):
            entry_id = reader.fixed_uint(VV_ID_BYTES)
            if entry_id <= previous:
                # Encode emits entries sorted by identifier; demanding the
                # same on decode keeps the encoding canonical and subsumes
                # the zero-identifier and duplicate checks.
                raise EncodingError(
                    f"vector entries out of canonical order "
                    f"({entry_id:#x} after {previous:#x})"
                )
            previous = entry_id
            counter = reader.fixed_uint(VV_COUNTER_BYTES)
            if counter == 0:
                raise EncodingError("vector entries carry positive counters")
            counters[entry_id] = counter
        reader.expect_exhausted("a dynamic-VV clock")
        return cls(replica, forks, counters, epoch=epoch)

    def _state(self) -> Tuple:
        return (
            self._replica,
            self._forks,
            tuple(sorted(self._counters.items())),
        )


class CausalHistoryClock(KernelClock):
    """The causal-history oracle behind the kernel protocol.

    Histories are packed event bitsets (:mod:`repro.causal.history`); fresh
    events come from one process-global arena -- the "global view" the
    oracle is explicitly allowed (and version stamps exist to eliminate).
    On the wire every event costs its full 64-bit identity, which is the
    oracle's honest, unbounded cost in the space experiments.

    Because the family *is* the global view, its wire form is only
    meaningful within the domain of one event arena: both encode and decode
    reject identities the process's arena has not issued.  (An envelope
    minted under a different arena is outside the oracle's model -- and
    accepting arbitrary identities would let one crafted envelope poison
    the arena or balloon every later bitset.)

    Known cost of the single shared arena: indices grow monotonically for
    the life of the process, so in a process running many independent
    replays a late-created history's packed bitset is as wide as the
    all-time event count (bounded by the codec's ``MAX_EVENT_INDEX``, i.e.
    ~2 MB worst case).  The per-run oracle adapter
    (:class:`~repro.kernel.adapters.CausalAdapter`) avoids this by giving
    each run a fresh :class:`~repro.causal.events.EventSource`; the kernel
    family deliberately keeps one arena because its envelopes must stay
    decodable across clock lineages within the process.
    """

    family = "causal-history"

    __slots__ = ("_history",)

    def __init__(self, history: CausalHistory = None, *, epoch: int = 0) -> None:
        super().__init__(epoch=epoch)
        if history is None:
            history = CausalHistory.empty()
        object.__setattr__(self, "_history", history)

    @property
    def history(self) -> CausalHistory:
        """The underlying packed event set."""
        return self._history

    def __repr__(self) -> str:
        return f"CausalHistoryClock({self._history!r}, epoch={self._epoch})"

    def with_epoch(self, epoch: int) -> "CausalHistoryClock":
        return CausalHistoryClock(self._history, epoch=epoch)

    def fork(self) -> Tuple["CausalHistoryClock", "CausalHistoryClock"]:
        return (
            CausalHistoryClock(self._history, epoch=self._epoch),
            CausalHistoryClock(self._history, epoch=self._epoch),
        )

    def event(self) -> "CausalHistoryClock":
        index = _GLOBAL_EVENTS.fresh_index()
        return CausalHistoryClock(
            self._history.with_event(index), epoch=self._epoch
        )

    def join(self, other: "CausalHistoryClock") -> "CausalHistoryClock":
        self._require_peer(other, "join")
        return CausalHistoryClock(
            self._history.union(other._history), epoch=self._epoch
        )

    def compare(self, other: "CausalHistoryClock") -> Ordering:
        self._require_peer(other, "compare")
        return self._history.compare(other._history)

    def _encoded_size_bits(self) -> int:
        # Closed form of len(payload_bytes()) * 8: event_count is a cached
        # popcount, so no event views or payload bytes are materialized on
        # the per-step size-sampling hot path.
        count = self._history.event_count
        return 8 * (_uvarint_len(count) + count * EVENT_ID_BYTES)

    @staticmethod
    def _require_issued(index: int) -> None:
        if index >= _GLOBAL_EVENTS.next_index:
            raise EncodingError(
                f"event identity {index} was never issued by this process's "
                f"global view (next fresh index: {_GLOBAL_EVENTS.next_index}); "
                f"causal-history envelopes only travel within one arena"
            )
        if index >= MAX_EVENT_INDEX:
            # A genuinely issued identity can still exceed the wire bound in
            # an extremely long-lived arena (> 16.7M events); report that
            # honestly rather than claiming the identity is foreign.
            raise EncodingError(
                f"event identity {index} exceeds the causal-history wire "
                f"bound {MAX_EVENT_INDEX}; the oracle's envelope format "
                f"does not cover arenas this old"
            )

    def _payload_bytes(self) -> bytes:
        out = bytearray()
        events = list(self._history)
        append_uvarint(out, len(events))
        for event in events:
            self._require_issued(event.sequence)
            out += event.sequence.to_bytes(EVENT_ID_BYTES, "big")
        return bytes(out)

    @classmethod
    def _decode_payload(cls, payload: bytes, epoch: int) -> "CausalHistoryClock":
        reader = ByteReader(payload)
        count = reader.uvarint()
        bits = 0
        previous = -1
        for _ in range(count):
            index = reader.fixed_uint(EVENT_ID_BYTES)
            cls._require_issued(index)
            if index <= previous:
                # Encode emits identities in ascending order; demanding the
                # same on decode keeps the encoding canonical (no two byte
                # strings decode equal) and subsumes the duplicate check.
                raise EncodingError(
                    f"event identities out of canonical order ({index} after "
                    f"{previous})"
                )
            previous = index
            bits |= 1 << index
        reader.expect_exhausted("a causal-history clock")
        return cls(CausalHistory.from_bits(bits), epoch=epoch)

    def _state(self) -> Tuple:
        return (self._history.bits,)
