#!/usr/bin/env python3
"""PANASYNC-style dependency tracking among file copies (Section 7).

A paper draft lives on a desktop; copies are carried to a laptop and a USB
stick.  Each copy is edited independently; the version stamps stored in the
sidecar files tell the user -- with no server and no synchronization history
-- which copies are outdated and which have genuinely diverged.

Run with::

    python examples/file_replication.py
"""

import tempfile
from pathlib import Path

from repro.panasync import Panasync


def main() -> None:
    print("=== PANASYNC-style file copy tracking ===\n")
    workdir = Path(tempfile.mkdtemp(prefix="panasync-demo-"))
    print(f"working directory: {workdir}\n")

    panasync = Panasync()
    panasync.add_repository("desktop", workdir / "desktop")
    panasync.add_repository("laptop", workdir / "laptop")
    panasync.add_repository("usb", workdir / "usb")

    # Create the draft on the desktop and carry copies around.
    panasync.create("desktop", "draft.tex", "\\section{Introduction}\n")
    panasync.copy("desktop", "draft.tex", "laptop")
    panasync.copy("desktop", "draft.tex", "usb")
    print("created draft.tex on the desktop; copied it to the laptop and a USB stick")

    # Work on the laptop during a trip.
    panasync.edit("laptop", "draft.tex", "\\section{Introduction}\nLaptop paragraph.\n")
    print("edited the laptop copy")

    print("\nstatus relative to the laptop copy:")
    for line in panasync.status(reference=("laptop", "draft.tex")):
        print(f"  {line.render()}")

    # The desktop copy is outdated: merging brings it up to date.
    relation = panasync.compare("desktop", "draft.tex", "laptop", "draft.tex")
    print(f"\ndesktop vs laptop: {relation.description}")
    panasync.merge("desktop", "draft.tex", "laptop", "draft.tex")
    print("merged the laptop's changes into the desktop copy")

    # Meanwhile somebody edited the USB copy too -- a genuine divergence.
    panasync.edit("usb", "draft.tex", "\\section{Introduction}\nUSB paragraph.\n")
    relation = panasync.compare("desktop", "draft.tex", "usb", "draft.tex")
    print(f"\ndesktop vs usb: {relation.description}")

    merged = panasync.merge(
        "desktop",
        "draft.tex",
        "usb",
        "draft.tex",
        resolver=lambda mine, theirs: mine + theirs,
    )
    print(f"merge needed a resolver (diverged: {merged.diverged}); contents combined")

    print("\nfinal contents of the desktop copy:")
    for line in panasync.repository("desktop").load("draft.tex").content.splitlines():
        print(f"  | {line}")

    print("\nfinal status (everything relative to the desktop copy):")
    for line in panasync.status(reference=("desktop", "draft.tex")):
        print(f"  {line.render()}")


if __name__ == "__main__":
    main()
