#!/usr/bin/env python3
"""Walk through every figure of the paper and print the regenerated values.

Run with::

    python examples/figure_walkthrough.py
"""

from repro.analysis.diagrams import render_trace
from repro.analysis.figures import (
    FIGURE4_EXPECTED,
    figure1_version_vectors,
    figure2_frontiers,
    figure2_trace,
    figure3_encoding,
    figure4_stamps,
)


def main() -> None:
    print("=== Figure 1: version vectors among three replicas ===")
    figure1 = figure1_version_vectors()
    for replica in figure1.replicas:
        rendered = " -> ".join(str(list(vector)) for vector in figure1.timelines[replica])
        print(f"  {replica}: {rendered}")
    print(f"  matches the paper: {figure1.matches_paper()}\n")

    print("=== Figure 2: fork/join evolution ===")
    trace = figure2_trace()
    print(render_trace(trace, annotate="stamps-nonreducing"))
    print("  possible frontiers containing c2:")
    for name, frontier in figure2_frontiers().items():
        print(f"    {name}: {frontier}")
    print()

    print("=== Figure 3: fixed replicas encoded with fork-and-join ===")
    figure3 = figure3_encoding()
    print(f"  checkpoints compared: {len(figure3.stamp_orderings)}")
    print(f"  stamps, version vectors and causal histories all agree: {figure3.all_agree()}\n")

    print("=== Figure 4: the version stamps of the Figure 2 evolution ===")
    figure4 = figure4_stamps()
    for key, expected in FIGURE4_EXPECTED.items():
        actual = figure4.stamps[key]
        marker = "ok" if actual == expected else "MISMATCH"
        print(f"  {key:16s} paper: {expected:18s} reproduced: {actual:18s} [{marker}]")
    print(f"  matches the paper: {figure4.matches_paper()}")


if __name__ == "__main__":
    main()
