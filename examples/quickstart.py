#!/usr/bin/env python3
"""Quickstart: version stamps in five minutes.

Shows the whole life cycle of the mechanism on a single data item:

1. start with one replica (the seed stamp ``[ε | ε]``),
2. fork it to create a second replica -- no server, no unique-id registry,
3. update the replicas independently,
4. compare them (equivalent / obsolete / conflicting),
5. join them back and watch the identities collapse to the seed.

Run with::

    python examples/quickstart.py
"""

from repro import VersionStamp


def main() -> None:
    print("=== Version stamps quickstart ===\n")

    # 1. A brand new data item has the seed stamp.
    original = VersionStamp.seed()
    print(f"seed stamp:                      {original}")

    # 2. Fork it: this is how a new replica is created.  Note that no global
    #    identifier was needed -- the two ids extend the parent's id with a
    #    0 and a 1.  Fork once more to keep a third copy on a USB stick.
    laptop, desktop = original.fork()
    desktop, usb = desktop.fork()
    print(f"after forks:  laptop  = {laptop}")
    print(f"              desktop = {desktop}")
    print(f"              usb     = {usb}")
    print(f"freshly forked replicas compare as: {laptop.compare(desktop)}\n")

    # 3. Update the laptop copy only.
    laptop = laptop.update()
    print(f"after an update on the laptop:   {laptop}")
    print(f"laptop  vs desktop: {laptop.compare(desktop)}   (laptop dominates)")
    print(f"desktop vs laptop : {desktop.compare(laptop)}   (desktop is obsolete)\n")

    # 4. Now update the desktop too -- the copies have diverged.
    desktop = desktop.update()
    print(f"after an update on the desktop:  {desktop}")
    print(f"laptop vs desktop: {laptop.compare(desktop)}   (mutually inconsistent)\n")

    # 5. Reconcile laptop and desktop: join combines their knowledge and the
    #    sibling identities collapse (Section 6 of the paper), so the merged
    #    stamp stays small.  The inputs of a join are retired -- stamps order
    #    *coexisting* replicas, so we compare the result against the replica
    #    that is still around: the untouched USB copy.
    merged = laptop.join(desktop)
    print(f"after joining laptop and desktop: {merged}")
    print(f"merged vs usb: {merged.compare(usb)}   (the usb copy is obsolete)")
    print(f"usb vs merged: {usb.compare(merged)}\n")

    # Synchronization of two live replicas = join followed by fork.
    merged, usb = merged.sync(usb)
    print("after synchronizing with the usb copy, both replicas are equivalent")
    print(f"  merged = {merged}")
    print(f"  usb    = {usb}")
    print(f"  merged vs usb: {merged.compare(usb)}")


if __name__ == "__main__":
    main()
