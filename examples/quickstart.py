#!/usr/bin/env python3
"""Quickstart: the causality kernel in five minutes.

Shows the whole life cycle of a causality clock through the public
``CausalityClock`` protocol (``repro.kernel``):

1. pick a clock family from the registry (version stamps by default --
   every step below works identically for ``itc``, ``vv-dynamic``, ...),
2. ``fork`` it to create a second replica -- no server, no id registry,
3. ``event`` the replicas independently,
4. ``compare`` them (equivalent / obsolete / conflicting),
5. ``join`` them back together,
6. round-trip a clock through the versioned, epoch-tagged wire envelope.

Run with::

    PYTHONPATH=src python examples/quickstart.py [family]
"""

import sys

from repro import kernel


def main(family: str = "version-stamp") -> None:
    print(f"=== Causality kernel quickstart ({family}) ===\n")
    print(f"registered families: {', '.join(kernel.families())}\n")

    # 1. A brand new data item has the family's seed clock.
    original = kernel.make(family)
    print(f"seed clock:                       {original!r}")

    # 2. Fork it: this is how a new replica is created.  No global
    #    identifier authority is consulted -- that is the paper's point.
    laptop, desktop = original.fork()
    print(f"freshly forked replicas compare:  {laptop.compare(desktop).value}\n")

    # 3. Record an update on the laptop copy only.
    laptop = laptop.event()
    print(f"laptop  vs desktop: {laptop.compare(desktop).value}   (laptop dominates)")
    print(f"desktop vs laptop : {desktop.compare(laptop).value}   (desktop is obsolete)\n")

    # 4. Update the desktop too -- the copies have diverged.
    desktop = desktop.event()
    print(f"after both update:  {laptop.compare(desktop).value}   (a genuine conflict)\n")

    # 5. Reconcile: join combines their knowledge; the inputs retire.
    merged = laptop.join(desktop)
    print(f"after join, vs itself: {merged.compare(merged).value}")
    print(f"metadata size:         {merged.encoded_size_bits()} bits\n")

    # 6. Ship it: the envelope is self-describing (magic, format version,
    #    family tag, re-rooting epoch, payload), so the receiver needs no
    #    out-of-band knowledge to decode it -- and a clock from an older
    #    re-rooting epoch is detected instead of silently miscompared.
    payload = merged.to_bytes()
    info = kernel.envelope_info(payload)
    print(f"envelope: {len(payload)} bytes, family={info.family!r}, "
          f"format v{info.format_version}, epoch={info.epoch}")
    restored = kernel.from_bytes(payload)
    print(f"round-trip intact: {restored == merged}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
