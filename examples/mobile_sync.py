#!/usr/bin/env python3
"""Mobile, partition-prone replication -- the paper's motivating scenario.

A small fleet of devices shares a contact list.  The devices spend most of
their time partitioned into ad-hoc clusters (a field team away from the
office), keep accepting writes locally, create *new* replicas while offline
(something version vectors cannot do without an identifier authority), and
reconcile whenever connectivity allows.  Version stamps detect exactly which
records were edited concurrently.

Run with::

    python examples/mobile_sync.py
"""

import random

from repro.replication import (
    AntiEntropy,
    MobileNode,
    PartitionSchedule,
    ScheduledNetwork,
)
from repro.replication.tracker import DynamicVVTracker
from repro.vv.id_source import CentralIdSource, IdAllocationError
from repro.replication.replica import Replica


def main() -> None:
    print("=== Mobile synchronization under partitions ===\n")

    # Phase 1 (6 rounds): the office {hq, archive} and the field team
    # {van, tablet} cannot reach each other.  Phase 2: everyone reconnects.
    schedule = PartitionSchedule(
        phases=[
            (6, [["hq", "archive"], ["van", "tablet", "phone"]]),
            (1000, []),
        ]
    )
    network = ScheduledNetwork(schedule)

    hq = MobileNode.first("hq", network)
    hq.write("contact:alice", "alice@example.org")
    hq.write("contact:bob", "bob@example.org")

    archive = hq.spawn_peer("archive")
    van = hq.spawn_peer("van")
    tablet = van.spawn_peer("tablet")
    nodes = [hq, archive, van, tablet]

    print("Partition phase: both sides keep working independently.")
    hq.write("contact:alice", "alice@hq.example.org")        # office edit
    van.write("contact:alice", "alice@mobile.example.org")   # concurrent field edit
    van.write("contact:carol", "carol@example.org")          # new record in the field

    # The field team even creates a brand new device replica while offline --
    # with version stamps this needs no identifier authority.
    phone = tablet.spawn_peer("phone")
    nodes.append(phone)
    print("  created a new replica ('phone') inside the partition: ok")

    # The identifier-based baseline cannot do that.
    baseline = Replica("baseline", value=None, tracker=DynamicVVTracker(id_source=CentralIdSource()))
    try:
        baseline.fork("offline-copy", connected=False)
        print("  dynamic version vectors created a replica offline (unexpected!)")
    except IdAllocationError:
        print("  dynamic version vectors refused: identifier authority unreachable")

    gossip = AntiEntropy(nodes, rng=random.Random(1))
    gossip.run(6)  # runs inside the partition; the network then heals
    print("\nWhile partitioned:")
    print(f"  hq sees contact:carol      -> {hq.read('contact:carol') or 'not yet replicated'}")
    print(f"  phone sees contact:alice   -> {phone.read('contact:alice')}")

    rounds = gossip.rounds_to_convergence(max_rounds=40)
    print(f"\nPartition healed; converged after {rounds} more gossip rounds.")

    print("\nAfter reconciliation:")
    for node in nodes:
        alice = sorted(node.read("contact:alice"))
        print(f"  {node.node_id:8s} contact:alice = {alice}")
    print("  -> the concurrent office/field edits are preserved as siblings")
    conflicted = hq.store.conflicted_keys()
    print(f"  keys flagged as conflicting: {conflicted}")

    # A later write resolves the conflict everywhere.
    hq.write("contact:alice", "alice@resolved.example.org")
    gossip.rounds_to_convergence(max_rounds=20)
    print("\nAfter hq resolves the conflict with a new write:")
    for node in nodes:
        print(f"  {node.node_id:8s} contact:alice = {node.read('contact:alice')}")

    print(f"\nTotal conflicts detected during the run: {gossip.total_conflicts()}")
    print(f"Total causal-metadata footprint: {gossip.total_metadata_bits()} bits across {len(nodes)} nodes")


if __name__ == "__main__":
    main()
