#!/usr/bin/env python3
"""Dynamic replica populations: stamps vs. the identifier-based baselines.

Simulates a service whose replica count changes constantly (autoscaling,
devices joining and leaving).  The same operation trace is replayed against
version stamps, non-reducing stamps, dynamic version vectors and Interval
Tree Clocks, reporting (a) whether each mechanism orders the replicas exactly
like the causal-history oracle and (b) how much metadata each one carries as
churn accumulates.

Run with::

    python examples/dynamic_replicas.py
"""

from repro.analysis.sizes import measure_trace_sizes
from repro.sim.metrics import SweepTable
from repro.sim.runner import LockstepRunner
from repro.sim.workload import churn_trace


def main() -> None:
    print("=== Dynamic replica populations under churn ===\n")

    table = SweepTable(
        ["operations", "stamps", "stamps_nonreducing", "dynamic_vv", "itc", "causal_oracle"]
    )
    # Churn op counts stay modest on purpose: id strings that never meet
    # their collapse siblings grow multiplicatively with churn, so a few
    # hundred operations already dwarf any realistic frontier (and past
    # ~300 the non-reducing flavour stops fitting in memory at all).
    for operations in (100, 150, 200):
        trace = churn_trace(operations, seed=7, target_frontier=8)
        sizes = measure_trace_sizes(trace, compare_every_step=False)
        table.add_row(
            operations=operations,
            stamps=sizes["version-stamps"].final_mean_bits,
            stamps_nonreducing=sizes["version-stamps-nonreducing"].final_mean_bits,
            dynamic_vv=sizes["dynamic-version-vectors"].final_mean_bits,
            itc=sizes["interval-tree-clocks"].final_mean_bits,
            causal_oracle=sizes["causal-history"].final_mean_bits,
        )
    print(table.render(title="mean metadata size per replica (bits) after N churn operations"))

    print("\nOrdering accuracy against the causal-history oracle (churn, 80 ops):")
    trace = churn_trace(80, seed=11, target_frontier=8)
    reports, _sizes = LockstepRunner(compare_every_step=True).run(trace)
    for name, report in sorted(reports.items()):
        print(
            f"  {name:28s} {report.agreement_rate:7.1%} agreement "
            f"({report.comparisons} pairwise comparisons)"
        )

    print(
        "\nTakeaway: every exact mechanism induces the same order as causal\n"
        "histories (Corollary 5.2); what differs is metadata size, where the\n"
        "Section 6 reduction keeps version stamps proportional to the live\n"
        "frontier while identifier-based vectors keep growing with churn."
    )


if __name__ == "__main__":
    main()
